#include "peer/peerd.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

namespace dtncache::peer {
namespace {

PeerdConfig fastConfig(NodeId node, std::uint32_t nodeCount, std::uint32_t itemCount) {
  PeerdConfig config;
  config.node = node;
  config.nodeCount = nodeCount;
  config.itemCount = itemCount;
  config.listenPort = 0;  // kernel-assigned; tests never collide
  config.vvIntervalSeconds = 0.02;
  config.bumpIntervalSeconds = 0.02;
  config.maintenanceIntervalSeconds = 0.1;
  config.bumpLimit = 3;
  config.payloadBytes = 16;
  config.reconnectBaseSeconds = 0.02;
  config.reconnectMaxSeconds = 0.2;
  return config;
}

std::string loopbackPeer(const Peerd& daemon) {
  return "127.0.0.1:" + std::to_string(daemon.boundPort());
}

// Grab a kernel-assigned port and release it so a daemon constructed later
// can listen there while an earlier daemon already dials it.
std::uint16_t reservePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  EXPECT_EQ(::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr), 0);
  socklen_t len = sizeof addr;
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

// Poll `done` on the shared loop until it holds or the deadline passes.
void runUntil(EventLoop& loop, const std::function<bool()>& done,
              double deadlineSeconds = 20.0) {
  const double start = loop.now();
  std::function<void()> poll = [&] {
    if (done() || loop.now() - start > deadlineSeconds) {
      loop.stop();
      return;
    }
    loop.runAfter(0.01, poll);
  };
  loop.runAfter(0.01, poll);
  loop.run();
}

TEST(PeerdLoopback, TwoPeersConvergeOverTcp) {
  EventLoop loop;
  obs::Tracer tracerA("loop-a");
  obs::Tracer tracerB("loop-b");
  obs::Registry registry;

  // Item 0 is sourced by node 0, item 1 by node 1; each side must learn
  // the other's bumps over the real socket path to converge.
  Peerd a(fastConfig(0, 2, 2), &tracerA, &registry, &loop);
  ASSERT_TRUE(a.start());

  PeerdConfig configB = fastConfig(1, 2, 2);
  configB.peers = loopbackPeer(a);
  Peerd b(std::move(configB), &tracerB, &registry, &loop);
  ASSERT_TRUE(b.start());

  const auto converged = [&] {
    for (data::ItemId item = 0; item < 2; ++item) {
      if (a.heldVersion(item).value_or(0) != 3) return false;
      if (b.heldVersion(item).value_or(0) != 3) return false;
    }
    return true;
  };
  runUntil(loop, converged);

  EXPECT_TRUE(converged()) << "freshness did not converge within the deadline";
  EXPECT_EQ(a.establishedCount(), 1u);
  EXPECT_EQ(b.establishedCount(), 1u);
  EXPECT_GE(registry.counter("peer.push.installed").value(), 2u);

  // Both traces carry the same install schema a simulation trace uses.
  std::ostringstream traceText;
  tracerB.flushTo(traceText);
  EXPECT_NE(traceText.str().find("\"kind\": \"install\""), std::string::npos);
  EXPECT_NE(traceText.str().find("\"kind\": \"contact\""), std::string::npos);
}

TEST(PeerdLoopback, DiskBackedPeerResumesAfterRestart) {
  const std::string storePath = std::string(::testing::TempDir()) +
                                "dtncache_loopback_store_" +
                                std::to_string(::getpid()) + ".log";
  std::remove(storePath.c_str());

  std::uint16_t firstPort = 0;
  {
    EventLoop loop;
    PeerdConfig config = fastConfig(0, 2, 1);
    config.storePath = storePath;
    Peerd daemon(std::move(config), nullptr, nullptr, &loop);
    ASSERT_TRUE(daemon.start());
    firstPort = daemon.boundPort();
    runUntil(loop, [&] { return daemon.heldVersion(0).value_or(0) >= 3; }, 10.0);
    EXPECT_EQ(daemon.heldVersion(0).value_or(0), 3u);
    // No graceful shutdown on purpose: the log must carry the state alone.
  }
  {
    EventLoop loop;
    PeerdConfig config = fastConfig(0, 2, 1);
    config.storePath = storePath;
    config.bumpLimit = 5;
    Peerd daemon(std::move(config), nullptr, nullptr, &loop);
    ASSERT_TRUE(daemon.start());
    // The restarted source resumed from v3 and kept counting — it must
    // reach 5 without ever re-issuing versions 1..3.
    EXPECT_EQ(daemon.heldVersion(0).value_or(0), 3u);
    runUntil(loop, [&] { return daemon.heldVersion(0).value_or(0) >= 5; }, 10.0);
    EXPECT_EQ(daemon.heldVersion(0).value_or(0), 5u);
  }
  (void)firstPort;
  std::remove(storePath.c_str());
}

TEST(PeerdLoopback, DuplicateSessionLoserParksInsteadOfChurning) {
  EventLoop loop;
  obs::Registry registry;

  Peerd a(fastConfig(0, 2, 2), nullptr, &registry, &loop);
  ASSERT_TRUE(a.start());

  // Two dial entries for the same peer: both establish, duplicate
  // resolution closes one. The loser must be parked, not redialed — a
  // redialed loser reconnects, loses the race again, and churns forever,
  // inflating the reconnect counter and the pair's contact-rate estimate.
  PeerdConfig configB = fastConfig(1, 2, 2);
  configB.peers = loopbackPeer(a) + "," + loopbackPeer(a);
  Peerd b(std::move(configB), nullptr, &registry, &loop);
  ASSERT_TRUE(b.start());

  const auto converged = [&] {
    for (data::ItemId item = 0; item < 2; ++item) {
      if (a.heldVersion(item).value_or(0) != 3) return false;
      if (b.heldVersion(item).value_or(0) != 3) return false;
    }
    return true;
  };
  runUntil(loop, converged);
  ASSERT_TRUE(converged());

  const std::uint64_t reconnectsAtConverge =
      registry.counter("peer.net.reconnects").value();
  const double idleStart = loop.now();
  runUntil(loop, [&] { return loop.now() - idleStart >= 1.0; }, 5.0);

  EXPECT_EQ(a.establishedCount(), 1u);
  EXPECT_EQ(b.establishedCount(), 1u);
  EXPECT_LE(registry.counter("peer.net.reconnects").value(),
            reconnectsAtConverge + 1);
}

TEST(PeerdLoopback, ParkedDialResumesWhenCanonicalSessionDrops) {
  EventLoop loop;
  obs::Registry registry;
  const std::uint16_t portB = reservePort();

  // Mutual dial: A dials the reserved port B will listen on, B dials A's
  // kernel-assigned port. The canonical session is A's dial (lower node
  // id), so B's own dial loses the duplicate race and is parked.
  PeerdConfig configA = fastConfig(0, 2, 1);
  configA.peers = "127.0.0.1:" + std::to_string(portB);
  auto a = std::make_unique<Peerd>(std::move(configA), nullptr, &registry, &loop);
  ASSERT_TRUE(a->start());
  const std::uint16_t portA = a->boundPort();

  PeerdConfig configB = fastConfig(1, 2, 1);
  configB.listenPort = portB;
  configB.peers = "127.0.0.1:" + std::to_string(portA);
  Peerd b(std::move(configB), nullptr, &registry, &loop);
  ASSERT_TRUE(b.start());

  runUntil(loop, [&] {
    return a->establishedCount() == 1 && b.establishedCount() == 1 &&
           b.heldVersion(0).value_or(0) >= 3;
  });
  ASSERT_GE(b.heldVersion(0).value_or(0), 3u);

  // Let duplicate resolution finish on both sides: A's dial needs one
  // backoff retry (B was not yet listening at A's first attempt) before the
  // canonical session exists and B's dial gets parked.
  const double settleStart = loop.now();
  runUntil(loop, [&] { return loop.now() - settleStart >= 0.5; }, 5.0);

  // Kill A. B's canonical session was inbound (no dial slot of its own), so
  // only the revived parked dial can ever reconnect — the restarted daemon
  // dials nobody.
  a.reset();
  PeerdConfig configA2 = fastConfig(0, 2, 1);
  configA2.listenPort = portA;
  configA2.bumpLimit = 5;
  Peerd a2(std::move(configA2), nullptr, &registry, &loop);
  ASSERT_TRUE(a2.start());

  runUntil(loop, [&] { return b.heldVersion(0).value_or(0) >= 5; });
  EXPECT_EQ(b.heldVersion(0).value_or(0), 5u);
  EXPECT_EQ(b.establishedCount(), 1u);
  EXPECT_EQ(a2.establishedCount(), 1u);
}

TEST(PeerdLoopback, GarbageBytesAreRejectedNotFatal) {
  EventLoop loop;
  obs::Registry registry;
  Peerd daemon(fastConfig(0, 2, 1), nullptr, &registry, &loop);
  ASSERT_TRUE(daemon.start());

  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(daemon.boundPort());
  ASSERT_EQ(::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr), 1);
  ASSERT_EQ(::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  const char garbage[] = "GET / HTTP/1.1\r\n\r\n";
  ASSERT_EQ(::send(client, garbage, sizeof garbage, 0),
            static_cast<ssize_t>(sizeof garbage));

  obs::Counter& rejected = registry.counter("peer.net.frames_rejected");
  runUntil(loop, [&] { return rejected.value() >= 1; }, 10.0);
  EXPECT_GE(rejected.value(), 1u);
  EXPECT_EQ(daemon.establishedCount(), 0u);
  ::close(client);
}

}  // namespace
}  // namespace dtncache::peer
