#include "peer/disk_store.hpp"

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>

namespace dtncache::peer {
namespace {

std::string tempLog(const char* name) {
  const std::string path = std::string(::testing::TempDir()) + "dtncache_" + name +
                           "_" + std::to_string(::getpid()) + ".log";
  std::remove(path.c_str());
  return path;
}

std::vector<std::uint8_t> bytes(std::initializer_list<int> values) {
  std::vector<std::uint8_t> out;
  for (int v : values) out.push_back(static_cast<std::uint8_t>(v));
  return out;
}

TEST(DiskStore, PutGetAndVersionOrdering) {
  DiskStore store;
  ASSERT_TRUE(store.open({tempLog("putget"), 1u << 20}));

  EXPECT_TRUE(store.put(7, 3, bytes({1, 2, 3})));
  const DiskStore::StoredItem* s = store.get(7);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->version, 3u);
  EXPECT_EQ(s->payload, bytes({1, 2, 3}));

  // Same or older versions write nothing — the log only grows on news.
  const std::size_t logBefore = store.logBytes();
  EXPECT_FALSE(store.put(7, 3, bytes({9})));
  EXPECT_FALSE(store.put(7, 2, bytes({9})));
  EXPECT_EQ(store.logBytes(), logBefore);

  EXPECT_TRUE(store.put(7, 4, bytes({4, 4})));
  EXPECT_EQ(store.get(7)->version, 4u);
  EXPECT_EQ(store.get(7)->payload, bytes({4, 4}));
  EXPECT_EQ(store.size(), 1u);
}

TEST(DiskStore, RemoveDropsItemAndSurvivesReplay) {
  const std::string path = tempLog("remove");
  {
    DiskStore store;
    ASSERT_TRUE(store.open({path, 1u << 20}));
    EXPECT_TRUE(store.put(1, 1, bytes({1})));
    EXPECT_TRUE(store.put(2, 1, bytes({2})));
    EXPECT_TRUE(store.remove(1));
    EXPECT_FALSE(store.remove(1));  // already gone
    EXPECT_EQ(store.get(1), nullptr);
    EXPECT_EQ(store.size(), 1u);
  }
  DiskStore reopened;
  ASSERT_TRUE(reopened.open({path, 1u << 20}));
  EXPECT_EQ(reopened.get(1), nullptr);
  ASSERT_NE(reopened.get(2), nullptr);
  EXPECT_EQ(reopened.get(2)->payload, bytes({2}));
  EXPECT_EQ(reopened.truncatedOnReplay(), 0u);
}

TEST(DiskStore, ReplayRecoversLatestVersions) {
  const std::string path = tempLog("replay");
  {
    DiskStore store;
    ASSERT_TRUE(store.open({path, 1u << 20}));
    for (data::Version v = 1; v <= 5; ++v)
      ASSERT_TRUE(store.put(0, v, bytes({static_cast<int>(v)})));
    ASSERT_TRUE(store.put(1, 9, bytes({42, 43})));
  }
  DiskStore reopened;
  ASSERT_TRUE(reopened.open({path, 1u << 20}));
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_EQ(reopened.get(0)->version, 5u);
  EXPECT_EQ(reopened.get(0)->payload, bytes({5}));
  EXPECT_EQ(reopened.get(1)->version, 9u);
}

TEST(DiskStore, TornTailIsTruncatedNotFatal) {
  const std::string path = tempLog("torn");
  {
    DiskStore store;
    ASSERT_TRUE(store.open({path, 1u << 20}));
    ASSERT_TRUE(store.put(0, 1, bytes({1, 2, 3, 4})));
    ASSERT_TRUE(store.put(1, 2, bytes({5, 6})));
  }
  std::size_t cleanBytes = 0;
  {
    std::ifstream in(path, std::ios::binary | std::ios::ate);
    cleanBytes = static_cast<std::size_t>(in.tellg());
  }
  // Simulate a kill mid-write: a record header promising more body bytes
  // than were ever flushed.
  {
    std::ofstream out(path, std::ios::binary | std::ios::app);
    const std::vector<std::uint8_t> torn = bytes({40, 0, 0, 0, 0xAA, 0xBB, 0xCC});
    out.write(reinterpret_cast<const char*>(torn.data()),
              static_cast<std::streamsize>(torn.size()));
  }
  DiskStore reopened;
  ASSERT_TRUE(reopened.open({path, 1u << 20}));
  EXPECT_EQ(reopened.truncatedOnReplay(), 1u);
  EXPECT_EQ(reopened.logBytes(), cleanBytes);
  EXPECT_EQ(reopened.size(), 2u);
  EXPECT_EQ(reopened.get(0)->payload, bytes({1, 2, 3, 4}));
  EXPECT_EQ(reopened.get(1)->version, 2u);

  // The tail was ftruncate'd away, so new appends land on a clean boundary
  // and a further reopen sees no corruption at all.
  ASSERT_TRUE(reopened.put(2, 1, bytes({7})));
  reopened.close();
  DiskStore again;
  ASSERT_TRUE(again.open({path, 1u << 20}));
  EXPECT_EQ(again.truncatedOnReplay(), 0u);
  EXPECT_EQ(again.size(), 3u);
}

TEST(DiskStore, CorruptedTailCrcIsTruncated) {
  const std::string path = tempLog("crc");
  {
    DiskStore store;
    ASSERT_TRUE(store.open({path, 1u << 20}));
    ASSERT_TRUE(store.put(0, 1, bytes({1})));
    ASSERT_TRUE(store.put(1, 1, bytes({2})));
  }
  // Flip one byte in the final record's body: its CRC no longer matches,
  // so replay must keep record 0 and drop record 1.
  {
    std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
    f.seekp(-1, std::ios::end);
    f.put(static_cast<char>(0x7F));
  }
  DiskStore reopened;
  ASSERT_TRUE(reopened.open({path, 1u << 20}));
  EXPECT_EQ(reopened.truncatedOnReplay(), 1u);
  EXPECT_EQ(reopened.size(), 1u);
  ASSERT_NE(reopened.get(0), nullptr);
  EXPECT_EQ(reopened.get(1), nullptr);
}

TEST(DiskStore, CompactionRewritesOnlyLiveRecords) {
  const std::string path = tempLog("compact");
  DiskStore store;
  ASSERT_TRUE(store.open({path, 2048}));  // tiny threshold to force compaction

  // Rewrite one item over and over: all but the last record are dead bytes.
  std::vector<std::uint8_t> payload(64, 0xEE);
  for (data::Version v = 1; v <= 200; ++v) ASSERT_TRUE(store.put(0, v, payload));
  EXPECT_GE(store.compactions(), 1u);
  EXPECT_LT(store.logBytes(), 2048u + 2 * (payload.size() + 32));
  ASSERT_NE(store.get(0), nullptr);
  EXPECT_EQ(store.get(0)->version, 200u);
  store.close();

  DiskStore reopened;
  ASSERT_TRUE(reopened.open({path, 2048}));
  EXPECT_EQ(reopened.truncatedOnReplay(), 0u);
  EXPECT_EQ(reopened.size(), 1u);
  EXPECT_EQ(reopened.get(0)->version, 200u);
  EXPECT_EQ(reopened.get(0)->payload, payload);
}

TEST(DiskStore, AppendsAfterCompactionLandAtEof) {
  // Compaction swaps fd_ for the rewritten file's descriptor; that fd must
  // keep the append-only discipline of open() so every later record lands
  // at EOF and survives replay.
  const std::string path = tempLog("postcompact");
  DiskStore store;
  ASSERT_TRUE(store.open({path, 2048}));
  const std::vector<std::uint8_t> payload(64, 0xAB);
  for (data::Version v = 1; v <= 200; ++v) ASSERT_TRUE(store.put(0, v, payload));
  ASSERT_GE(store.compactions(), 1u);

  for (data::ItemId item = 1; item <= 5; ++item)
    ASSERT_TRUE(store.put(item, 1, bytes({static_cast<int>(item)})));
  store.close();

  DiskStore reopened;
  ASSERT_TRUE(reopened.open({path, 1u << 20}));
  EXPECT_EQ(reopened.truncatedOnReplay(), 0u);
  EXPECT_EQ(reopened.size(), 6u);
  ASSERT_NE(reopened.get(0), nullptr);
  EXPECT_EQ(reopened.get(0)->version, 200u);
  for (data::ItemId item = 1; item <= 5; ++item) {
    ASSERT_NE(reopened.get(item), nullptr);
    EXPECT_EQ(reopened.get(item)->payload, bytes({static_cast<int>(item)}));
  }
}

TEST(DiskStore, OpenFailsOnUnwritablePath) {
  DiskStore store;
  EXPECT_FALSE(store.open({"/nonexistent-dir/x.log", 1u << 20}));
  EXPECT_FALSE(store.isOpen());
}

TEST(PeerStore, InstallFeedsBothTiersAndFetchPromotes) {
  PeerStore store(1u << 20, {tempLog("twotier"), 1u << 20});
  ASSERT_TRUE(store.diskOk());

  EXPECT_TRUE(store.install(3, 1, bytes({1, 2}), 0.0));
  EXPECT_FALSE(store.install(3, 1, bytes({1, 2}), 1.0));  // no news
  EXPECT_TRUE(store.install(3, 2, bytes({3, 4}), 2.0));

  ASSERT_TRUE(store.heldVersion(3).has_value());
  EXPECT_EQ(*store.heldVersion(3), 2u);
  EXPECT_FALSE(store.heldVersion(99).has_value());

  const DiskStore::StoredItem* fetched = store.fetch(3, 3.0);
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(fetched->payload, bytes({3, 4}));
  EXPECT_NE(store.memory().find(3), nullptr);
}

TEST(PeerStore, DiskTierServesWhatMemoryEvicted) {
  // Memory budget fits one 64-byte entry; the disk tier keeps both.
  PeerStore store(80, {tempLog("evict"), 1u << 20});
  ASSERT_TRUE(store.diskOk());
  const std::vector<std::uint8_t> payload(64, 0x11);
  EXPECT_TRUE(store.install(0, 5, payload, 0.0));
  EXPECT_TRUE(store.install(1, 6, payload, 1.0));

  // Item 0 fell out of the LRU tier, but heldVersion still answers from disk.
  ASSERT_TRUE(store.heldVersion(0).has_value());
  EXPECT_EQ(*store.heldVersion(0), 5u);
  const DiskStore::StoredItem* fetched = store.fetch(0, 2.0);
  ASSERT_NE(fetched, nullptr);
  EXPECT_EQ(fetched->version, 5u);
}

}  // namespace
}  // namespace dtncache::peer
