#include "peer/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>

namespace dtncache::peer {
namespace {

DecodeResult decodeAll(const std::vector<std::uint8_t>& bytes) {
  return decodeFrame(bytes.data(), bytes.size());
}

TEST(Wire, HeaderLayoutIsExplicitLittleEndian) {
  const std::vector<std::uint8_t> bytes = encodeFrame(Bye{});
  ASSERT_EQ(bytes.size(), kFrameHeaderBytes);
  // "DTNC" on the wire, little-endian magic.
  EXPECT_EQ(bytes[0], 'D');
  EXPECT_EQ(bytes[1], 'T');
  EXPECT_EQ(bytes[2], 'N');
  EXPECT_EQ(bytes[3], 'C');
  EXPECT_EQ(bytes[4], kWireVersion);
  EXPECT_EQ(bytes[5], static_cast<std::uint8_t>(FrameType::kBye));
  EXPECT_EQ(bytes[6], 0);  // reserved
  EXPECT_EQ(bytes[7], 0);
  EXPECT_EQ(bytes[8], 0);  // zero-length payload
  EXPECT_EQ(bytes[11], 0);
}

TEST(Wire, HelloRoundTrip) {
  const Hello in{7, 40, 100};
  const auto r = decodeAll(encodeFrame(in));
  ASSERT_EQ(r.status, DecodeStatus::kFrame);
  const auto& out = std::get<Hello>(*r.frame);
  EXPECT_EQ(out.node, 7u);
  EXPECT_EQ(out.nodeCount, 40u);
  EXPECT_EQ(out.itemCount, 100u);
}

TEST(Wire, VersionVectorRoundTrip) {
  VersionVector in;
  in.entries = {{0, 1}, {3, 0xDEADBEEFCAFEull}, {0xFFFFFFFEu, 42}};
  const auto r = decodeAll(encodeFrame(in));
  ASSERT_EQ(r.status, DecodeStatus::kFrame);
  const auto& out = std::get<VersionVector>(*r.frame);
  ASSERT_EQ(out.entries.size(), 3u);
  EXPECT_EQ(out.entries[1].item, 3u);
  EXPECT_EQ(out.entries[1].version, 0xDEADBEEFCAFEull);
  EXPECT_EQ(out.entries[2].item, 0xFFFFFFFEu);
}

TEST(Wire, EmptyVersionVectorRoundTrip) {
  const auto r = decodeAll(encodeFrame(VersionVector{}));
  ASSERT_EQ(r.status, DecodeStatus::kFrame);
  EXPECT_TRUE(std::get<VersionVector>(*r.frame).entries.empty());
}

TEST(Wire, RefreshPushRoundTrip) {
  RefreshPush in;
  in.item = 9;
  in.version = 12345;
  in.payload = {0x00, 0xFF, 0x42, 0x13};
  const auto r = decodeAll(encodeFrame(in));
  ASSERT_EQ(r.status, DecodeStatus::kFrame);
  const auto& out = std::get<RefreshPush>(*r.frame);
  EXPECT_EQ(out.item, 9u);
  EXPECT_EQ(out.version, 12345u);
  EXPECT_EQ(out.payload, in.payload);
}

TEST(Wire, QueryReplyReparentByeRoundTrip) {
  {
    const auto r = decodeAll(encodeFrame(Query{77, 5}));
    ASSERT_EQ(r.status, DecodeStatus::kFrame);
    EXPECT_EQ(std::get<Query>(*r.frame).queryId, 77u);
  }
  {
    const auto r = decodeAll(encodeFrame(Reply{77, 5, 3, true}));
    ASSERT_EQ(r.status, DecodeStatus::kFrame);
    const auto& reply = std::get<Reply>(*r.frame);
    EXPECT_EQ(reply.version, 3u);
    EXPECT_TRUE(reply.hasCopy);
  }
  {
    const auto r = decodeAll(encodeFrame(Reparent{2, 8, 1}));
    ASSERT_EQ(r.status, DecodeStatus::kFrame);
    EXPECT_EQ(std::get<Reparent>(*r.frame).newParent, 1u);
  }
  {
    const auto r = decodeAll(encodeFrame(Bye{}));
    ASSERT_EQ(r.status, DecodeStatus::kFrame);
    EXPECT_TRUE(std::holds_alternative<Bye>(*r.frame));
  }
}

TEST(Wire, EveryProperPrefixNeedsMore) {
  RefreshPush push;
  push.item = 1;
  push.version = 2;
  push.payload = {1, 2, 3, 4, 5};
  const std::vector<std::uint8_t> bytes = encodeFrame(push);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    const DecodeResult r = decodeFrame(bytes.data(), len);
    EXPECT_EQ(r.status, DecodeStatus::kNeedMore) << "prefix length " << len;
  }
}

TEST(Wire, StreamDecodesFirstFrameAndLeavesTail) {
  std::vector<std::uint8_t> stream = encodeFrame(Query{1, 2});
  const std::vector<std::uint8_t> second = encodeFrame(Bye{});
  stream.insert(stream.end(), second.begin(), second.end());
  const DecodeResult r = decodeFrame(stream.data(), stream.size());
  ASSERT_EQ(r.status, DecodeStatus::kFrame);
  EXPECT_TRUE(std::holds_alternative<Query>(*r.frame));
  EXPECT_EQ(r.consumed, stream.size() - second.size());
  const DecodeResult r2 = decodeFrame(stream.data() + r.consumed, second.size());
  ASSERT_EQ(r2.status, DecodeStatus::kFrame);
  EXPECT_TRUE(std::holds_alternative<Bye>(*r2.frame));
}

TEST(Wire, RejectsBadMagic) {
  std::vector<std::uint8_t> bytes = encodeFrame(Bye{});
  bytes[0] ^= 0x01;
  const auto r = decodeAll(bytes);
  EXPECT_EQ(r.status, DecodeStatus::kReject);
  EXPECT_STREQ(r.error, "bad magic");
}

TEST(Wire, RejectsWrongVersion) {
  std::vector<std::uint8_t> bytes = encodeFrame(Bye{});
  bytes[4] = kWireVersion + 1;
  EXPECT_EQ(decodeAll(bytes).status, DecodeStatus::kReject);
}

TEST(Wire, RejectsNonzeroReserved) {
  std::vector<std::uint8_t> bytes = encodeFrame(Bye{});
  bytes[6] = 1;
  EXPECT_EQ(decodeAll(bytes).status, DecodeStatus::kReject);
}

TEST(Wire, RejectsUnknownType) {
  std::vector<std::uint8_t> bytes = encodeFrame(Bye{});
  bytes[5] = 0;
  EXPECT_EQ(decodeAll(bytes).status, DecodeStatus::kReject);
  bytes[5] = 200;
  EXPECT_EQ(decodeAll(bytes).status, DecodeStatus::kReject);
}

TEST(Wire, RejectsOversizedLength) {
  std::vector<std::uint8_t> bytes = encodeFrame(Bye{});
  // Patch in a length just above the cap; no payload needs to follow — the
  // header alone must be rejected (not kNeedMore, which would make a peer
  // wait for 16 MiB that never arrives).
  const std::uint32_t huge = kMaxPayloadBytes + 1;
  std::memcpy(bytes.data() + 8, &huge, 4);
  EXPECT_EQ(decodeAll(bytes).status, DecodeStatus::kReject);
}

TEST(Wire, RejectsVersionVectorCountMismatch) {
  VersionVector vv;
  vv.entries = {{1, 2}, {3, 4}};
  std::vector<std::uint8_t> bytes = encodeFrame(vv);
  bytes[kFrameHeaderBytes] = 200;  // count claims 200, payload holds 2
  const auto r = decodeAll(bytes);
  ASSERT_EQ(r.status, DecodeStatus::kReject);
  EXPECT_NE(std::strstr(r.error, "count"), nullptr);
}

TEST(Wire, RejectsPushPayloadLengthMismatch) {
  RefreshPush push;
  push.item = 1;
  push.version = 1;
  push.payload = {9, 9, 9};
  std::vector<std::uint8_t> bytes = encodeFrame(push);
  bytes[kFrameHeaderBytes + 12] += 1;  // inner payloadLen now disagrees
  EXPECT_EQ(decodeAll(bytes).status, DecodeStatus::kReject);
}

TEST(Wire, RejectsNonBooleanReplyFlag) {
  std::vector<std::uint8_t> bytes = encodeFrame(Reply{1, 2, 3, true});
  bytes[bytes.size() - 1] = 2;
  EXPECT_EQ(decodeAll(bytes).status, DecodeStatus::kReject);
}

TEST(Wire, RejectsTrailingPayloadBytes) {
  std::vector<std::uint8_t> bytes = encodeFrame(Query{1, 2});
  bytes.push_back(0);  // extra payload byte...
  bytes[8] += 1;       // ...accounted in the header length
  const auto r = decodeAll(bytes);
  ASSERT_EQ(r.status, DecodeStatus::kReject);
  EXPECT_NE(std::strstr(r.error, "trailing"), nullptr);
}

// Deterministic mutation fuzz: flip bytes all over valid frames and check
// the decoder's contract — it must classify every input without crashing,
// throwing, or over-reading (ASan covers the latter in CI).
TEST(Wire, MutationFuzzNeverThrows) {
  std::uint64_t rng = 0x9E3779B97F4A7C15ull;
  const auto next = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  VersionVector vv;
  for (std::uint32_t i = 0; i < 16; ++i) vv.entries.push_back({i, i * 977u});
  RefreshPush push;
  push.payload.assign(64, 0xAB);
  const std::vector<FrameBody> corpus = {Hello{1, 8, 4}, vv, push, Query{5, 1},
                                         Reply{5, 1, 9, true}, Reparent{1, 2, 3}, Bye{}};

  for (const FrameBody& seed : corpus) {
    const std::vector<std::uint8_t> original = encodeFrame(seed);
    for (int round = 0; round < 500; ++round) {
      std::vector<std::uint8_t> bytes = original;
      const std::size_t flips = 1 + next() % 4;
      for (std::size_t f = 0; f < flips; ++f)
        bytes[next() % bytes.size()] ^= static_cast<std::uint8_t>(1 + next() % 255);
      if (next() % 4 == 0) bytes.resize(next() % (bytes.size() + 1));
      const DecodeResult r = decodeFrame(bytes.data(), bytes.size());
      if (r.status == DecodeStatus::kFrame) {
        EXPECT_LE(r.consumed, bytes.size());
        EXPECT_TRUE(r.frame.has_value());
      } else if (r.status == DecodeStatus::kReject) {
        EXPECT_NE(r.error, nullptr);
      }
    }
  }
}

}  // namespace
}  // namespace dtncache::peer
