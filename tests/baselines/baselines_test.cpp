#include "baselines/baselines.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "data/source.hpp"
#include "net/network.hpp"
#include "runner/experiment.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace dtncache::baselines {
namespace {

/// Shared rig: 12-node homogeneous trace, one item, pluggable scheme.
struct Rig {
  explicit Rig(cache::RefreshScheme& scheme, std::uint64_t seed = 1,
               double contactsPerPairPerDay = 6.0, sim::SimTime duration = sim::days(10))
      : world(trace::generate(
            trace::homogeneousConfig(12, contactsPerPairPerDay, duration, seed))),
        catalog(makeCatalog()),
        estimator(12, {}, 0.0),
        network(simulator, world.trace),
        collector(catalog, 0.0),
        coop(simulator, network, catalog, estimator, collector, world.rates, cacheConfig()),
        horizon(duration) {
    sources = std::make_unique<data::SourceProcess>(simulator, catalog, horizon);
    coop.setScheme(&scheme);
    coop.start(*sources, nullptr, horizon);
  }

  static data::Catalog makeCatalog() {
    data::CatalogConfig cfg;
    cfg.itemCount = 2;
    cfg.nodeCount = 12;
    cfg.refreshPeriod = sim::hours(12);
    return data::makeUniformCatalog(cfg);
  }
  static cache::CoopCacheConfig cacheConfig() {
    cache::CoopCacheConfig c;
    c.cachingNodesPerItem = 5;
    return c;
  }

  metrics::RunResults run() {
    simulator.runUntil(horizon);
    return collector.finalize(horizon, network.transfers());
  }

  trace::SyntheticTrace world;
  sim::Simulator simulator;
  data::Catalog catalog;
  trace::ContactRateEstimator estimator;
  net::Network network;
  metrics::MetricsCollector collector;
  cache::CooperativeCache coop;
  std::unique_ptr<data::SourceProcess> sources;
  sim::SimTime horizon;
};

TEST(NoRefresh, NeverTransfersRefreshBytes) {
  NoRefreshScheme scheme;
  Rig rig(scheme);
  const auto r = rig.run();
  EXPECT_EQ(r.transfers.of(net::Traffic::kRefresh).bytes, 0u);
  EXPECT_EQ(r.refreshPushes, 0u);
  // Fresh only during the first period: 12h of 10 days ≈ 5%.
  EXPECT_LT(r.meanFreshFraction, 0.1);
}

TEST(SourceDirect, OnlySourceContactsCarryRefreshes) {
  SourceDirectScheme scheme;
  Rig rig(scheme);
  const auto r = rig.run();
  EXPECT_GT(r.refreshPushes, 0u);
  EXPECT_GT(r.meanFreshFraction, 0.1);
}

TEST(Epidemic, BeatsSourceDirect) {
  SourceDirectScheme direct;
  Rig rigDirect(direct, 3);
  const auto rDirect = rigDirect.run();

  EpidemicScheme epidemic;
  Rig rigEpidemic(epidemic, 3);
  const auto rEpidemic = rigEpidemic.run();

  EXPECT_GT(rEpidemic.meanFreshFraction, rDirect.meanFreshFraction);
}

TEST(Flooding, IsTheFreshnessCeiling) {
  EpidemicScheme epidemic;
  Rig rigEpidemic(epidemic, 5, /*contactsPerPairPerDay=*/1.0, sim::days(20));
  const auto rEpidemic = rigEpidemic.run();

  FloodingScheme flooding;
  Rig rigFlooding(flooding, 5, 1.0, sim::days(20));
  const auto rFlooding = rigFlooding.run();

  EXPECT_GE(rFlooding.meanFreshFraction, rEpidemic.meanFreshFraction);
  EXPECT_GT(rigFlooding.network.transfers().of(net::Traffic::kRefresh).bytes,
            rigEpidemic.network.transfers().of(net::Traffic::kRefresh).bytes);
}

TEST(Flooding, NonMembersCarryRelayCopies) {
  FloodingScheme flooding;
  Rig rig(flooding);
  rig.run();
  EXPECT_GT(flooding.relayCopies(), 0u);
}

TEST(Pull, IssuesPullsAndRefreshesCopies) {
  PullConfig cfg;
  cfg.checkPeriod = sim::hours(1);
  PullScheme pull(cfg);
  Rig rig(pull);
  const auto r = rig.run();
  EXPECT_GT(pull.pullsIssued(), 0u);
  EXPECT_GT(r.transfers.of(net::Traffic::kPull).messages, 0u);
  // Pull responses arrive as refresh-category data copies.
  EXPECT_GT(r.refreshPushes, 0u);
  EXPECT_GT(r.meanFreshFraction, 0.05);
}

TEST(Pull, OutstandingRequestsAreRateLimited) {
  PullConfig cfg;
  cfg.checkPeriod = sim::hours(1);
  cfg.pullTtl = sim::days(2);
  PullScheme pull(cfg);
  // Near-zero contact rate: pulls can never be answered, so the count is
  // bounded by members × items (one outstanding each), not by time.
  Rig rig(pull, 9, /*contactsPerPairPerDay=*/0.001, sim::days(2));
  rig.run();
  EXPECT_LE(pull.pullsIssued(), 5u * 2u);
}

TEST(Invalidation, GossipSpreadsVersionKnowledge) {
  InvalidationScheme inv;
  Rig rig(inv);
  rig.run();
  // After 10 days of dense mixing, every node should have heard of a recent
  // version of item 0 (bumps every 12 h → final version 20).
  const data::Version current = rig.catalog.clock(0).currentVersion(rig.horizon);
  std::size_t aware = 0;
  for (NodeId n = 0; n < 12; ++n)
    if (inv.knownVersion(n, 0) + 2 >= current) ++aware;
  EXPECT_GE(aware, 10u);
}

TEST(Invalidation, PullsOnlyWhenStalenessKnown) {
  InvalidationScheme inv;
  Rig rig(inv);
  const auto r = rig.run();
  EXPECT_GT(inv.pullsIssued(), 0u);
  EXPECT_GT(r.transfers.of(net::Traffic::kPull).messages, 0u);
  EXPECT_GT(r.refreshPushes, 0u);
}

TEST(Invalidation, BeatsBlindAgeBasedPull) {
  // Gossip detects staleness at rumor speed; age-based pulling guesses.
  PullScheme pull;
  Rig rigPull(pull, 17);
  const double fPull = rigPull.run().meanFreshFraction;
  InvalidationScheme inv;
  Rig rigInv(inv, 17);
  const double fInv = rigInv.run().meanFreshFraction;
  EXPECT_GT(fInv, fPull * 0.9);  // at least comparable; usually better
}

TEST(Invalidation, GossipBytesAccountedAsControl) {
  InvalidationScheme inv;
  Rig rig(inv);
  const auto r = rig.run();
  // Handshake (2/contact) + gossip (2/contact).
  EXPECT_GT(r.transfers.of(net::Traffic::kControl).messages,
            2 * rig.network.contactsDelivered());
}

TEST(Flooding, RelaysBridgeDisconnectedMembers) {
  // Sparse run where member-to-member and source-to-member contacts are
  // rare: flooding must still beat epidemic decisively *because* of the
  // relay copies carried by non-members.
  EpidemicScheme epidemic;
  Rig rigE(epidemic, 31, /*contactsPerPairPerDay=*/0.8, sim::days(20));
  const auto e = rigE.run();
  FloodingScheme flooding;
  Rig rigF(flooding, 31, 0.8, sim::days(20));
  const auto f = rigF.run();
  EXPECT_GT(f.meanFreshFraction, 1.3 * e.meanFreshFraction);
  EXPECT_GT(flooding.relayCopies(), 0u);
}

TEST(SourceDirect, NeverUsesNonSourceSenders) {
  // All refresh bytes must be attributed to item sources.
  SourceDirectScheme scheme;
  Rig rig(scheme, 13);
  const auto r = rig.run();
  ASSERT_GT(r.transfers.of(net::Traffic::kRefresh).bytes, 0u);
  std::vector<NodeId> sources;
  for (data::ItemId item = 0; item < rig.catalog.size(); ++item)
    sources.push_back(rig.catalog.spec(item).source);
  const auto& perNode = r.transfers.perNodeRefreshBytes();
  for (NodeId n = 0; n < perNode.size(); ++n) {
    const bool isSource = std::find(sources.begin(), sources.end(), n) != sources.end();
    if (!isSource) EXPECT_EQ(perNode[n], 0u) << "non-source node " << n << " sent refreshes";
  }
}

TEST(Baselines, FreshnessOrderingHolds) {
  // The paper's qualitative ordering on a well-connected trace:
  // NoRefresh < SourceDirect <= Epidemic <= Flooding.
  NoRefreshScheme none;
  SourceDirectScheme direct;
  EpidemicScheme epidemic;
  FloodingScheme flooding;
  const double fNone = Rig(none, 21).run().meanFreshFraction;
  const double fDirect = Rig(direct, 21).run().meanFreshFraction;
  const double fEpidemic = Rig(epidemic, 21).run().meanFreshFraction;
  const double fFlood = Rig(flooding, 21).run().meanFreshFraction;
  EXPECT_LT(fNone, fDirect);
  EXPECT_LE(fDirect, fEpidemic + 0.02);
  EXPECT_LE(fEpidemic, fFlood + 0.02);
}

}  // namespace
}  // namespace dtncache::baselines
