#include "core/hierarchy.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/rng.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::core {
namespace {

RateFn uniformRate(double r) {
  return [r](NodeId, NodeId) { return r; };
}

RateFn fromMatrix(const trace::RateMatrix& m) {
  return [&m](NodeId i, NodeId j) { return m.rate(i, j); };
}

TEST(Hierarchy, BuildTrivialSingleMember) {
  const auto h = RefreshHierarchy::build(0, {1}, uniformRate(1.0), 10.0, {});
  EXPECT_EQ(h.root(), 0u);
  EXPECT_EQ(h.memberCount(), 2u);
  EXPECT_EQ(h.parentOf(1), 0u);
  EXPECT_EQ(h.parentOf(0), kNoNode);
  EXPECT_EQ(h.depthOf(1), 1u);
  h.checkInvariants();
}

TEST(Hierarchy, FanoutBoundForcesDepth) {
  HierarchyConfig cfg;
  cfg.fanoutBound = 2;
  const auto h = RefreshHierarchy::build(0, {1, 2, 3, 4, 5, 6}, uniformRate(1.0), 10.0, cfg);
  h.checkInvariants();
  for (NodeId n : {0u, 1u, 2u, 3u, 4u, 5u, 6u})
    EXPECT_LE(h.childrenOf(n).size(), 2u);
  EXPECT_GE(h.maxDepth(), 2u);  // 6 members cannot fit in one level of 2
}

TEST(Hierarchy, FanoutCapacityExhaustionThrows) {
  HierarchyConfig cfg;
  cfg.fanoutBound = 1;  // a chain: root->a->b is fine, but...
  // fanout 1 builds a chain, which can host any count; use fanout that
  // cannot: impossible only if fanoutBound==0, which the config rejects.
  cfg.fanoutBound = 0;
  EXPECT_THROW(RefreshHierarchy::build(0, {1}, uniformRate(1.0), 10.0, cfg),
               InvariantViolation);
}

TEST(Hierarchy, PrefersHighRateParents) {
  // Node 1 has a fast link to the root; node 2's only good link is to 1.
  trace::RateMatrix m(3);
  m.setRate(0, 1, 1.0);
  m.setRate(0, 2, 0.001);
  m.setRate(1, 2, 0.8);
  const auto h = RefreshHierarchy::build(0, {1, 2}, fromMatrix(m), 10.0, {});
  EXPECT_EQ(h.parentOf(1), 0u);
  EXPECT_EQ(h.parentOf(2), 1u);
}

TEST(Hierarchy, DepthAwareAvoidsDeepChains) {
  // Node 2 attaches to the root first (0.5 beats 0.3). For node 1, a naive
  // single-hop builder prefers the fast 2→1 link (0.8) and builds a chain;
  // the depth-aware builder sees the chain 0→2→1 delivers within τ with
  // probability 0.13 < 0.26 for the slow-but-direct root link, and keeps
  // node 1 at depth 1.
  trace::RateMatrix m(3);
  const double tau = 1.0;
  m.setRate(0, 1, 0.3);
  m.setRate(1, 2, 0.8);
  m.setRate(0, 2, 0.5);
  HierarchyConfig aware;
  aware.depthAware = true;
  const auto h = RefreshHierarchy::build(0, {1, 2}, fromMatrix(m), tau, aware);
  EXPECT_EQ(h.parentOf(1), 0u);
  EXPECT_EQ(h.maxDepth(), 1u);

  HierarchyConfig naive;
  naive.depthAware = false;
  const auto g = RefreshHierarchy::build(0, {1, 2}, fromMatrix(m), tau, naive);
  EXPECT_EQ(g.parentOf(1), 2u);  // the naive builder falls for the fast hop
  EXPECT_EQ(g.maxDepth(), 2u);
}

TEST(Hierarchy, MembersBelowRootIsLevelOrdered) {
  HierarchyConfig cfg;
  cfg.fanoutBound = 2;
  const auto h = RefreshHierarchy::build(0, {1, 2, 3, 4, 5}, uniformRate(1.0), 10.0, cfg);
  const auto order = h.membersBelowRoot();
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 1; i < order.size(); ++i)
    EXPECT_LE(h.depthOf(order[i - 1]), h.depthOf(order[i]));
}

TEST(Hierarchy, ChainRatesFollowPath) {
  trace::RateMatrix m(4);
  m.setRate(0, 1, 1.0);
  m.setRate(1, 2, 0.5);
  m.setRate(2, 3, 0.25);
  HierarchyConfig cfg;
  cfg.fanoutBound = 1;
  const auto h = RefreshHierarchy::build(0, {1, 2, 3}, fromMatrix(m), 100.0, cfg);
  const auto rates = h.chainRates(3, fromMatrix(m));
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[0], 1.0);
  EXPECT_DOUBLE_EQ(rates[1], 0.5);
  EXPECT_DOUBLE_EQ(rates[2], 0.25);
}

TEST(Hierarchy, IsAncestorWalksUp) {
  HierarchyConfig cfg;
  cfg.fanoutBound = 1;
  const auto h = RefreshHierarchy::build(0, {1, 2, 3}, uniformRate(1.0), 10.0, cfg);
  // Chain 0->1->2->3 (uniform rates, fanout 1).
  EXPECT_TRUE(h.isAncestor(0, 3));
  EXPECT_TRUE(h.isAncestor(1, 3));
  EXPECT_FALSE(h.isAncestor(3, 1));
  EXPECT_FALSE(h.isAncestor(3, 3));
}

TEST(Hierarchy, ReparentMovesSubtree) {
  HierarchyConfig cfg;
  cfg.fanoutBound = 3;
  auto h = RefreshHierarchy::build(0, {1, 2, 3, 4}, uniformRate(1.0), 10.0, cfg);
  // Find a grandchild (depth 2) or force one.
  NodeId child = kNoNode;
  for (NodeId n : h.membersBelowRoot())
    if (h.depthOf(n) == 1 && n != 1) child = n;
  if (child == kNoNode) GTEST_SKIP() << "tree shape has no movable node";
  h.reparent(child, 1, cfg.fanoutBound);
  EXPECT_EQ(h.parentOf(child), 1u);
  EXPECT_EQ(h.depthOf(child), h.depthOf(1) + 1);
  h.checkInvariants();
}

TEST(Hierarchy, ReparentRejectsCycle) {
  HierarchyConfig cfg;
  cfg.fanoutBound = 1;
  auto h = RefreshHierarchy::build(0, {1, 2}, uniformRate(1.0), 10.0, cfg);
  // Chain 0->1->2; moving 1 under 2 would create a cycle.
  EXPECT_THROW(h.reparent(1, 2, cfg.fanoutBound), InvariantViolation);
}

TEST(Hierarchy, ReparentRejectsFullParent) {
  HierarchyConfig cfg;
  cfg.fanoutBound = 2;
  auto h = RefreshHierarchy::build(0, {1, 2, 3, 4, 5, 6}, uniformRate(1.0), 10.0, cfg);
  // Root has 2 children (full). Find a depth-2 node and try to move it up.
  for (NodeId n : h.membersBelowRoot()) {
    if (h.depthOf(n) == 2) {
      EXPECT_THROW(h.reparent(n, 0, cfg.fanoutBound), InvariantViolation);
      return;
    }
  }
  FAIL() << "expected a depth-2 node";
}

TEST(Hierarchy, ReparentRootRejected) {
  auto h = RefreshHierarchy::build(0, {1}, uniformRate(1.0), 10.0, {});
  EXPECT_THROW(h.reparent(0, 1, 3), InvariantViolation);
}

TEST(Hierarchy, AddMemberAttaches) {
  auto h = RefreshHierarchy::build(0, {1}, uniformRate(1.0), 10.0, {});
  h.addMember(5, 1, 3);
  EXPECT_TRUE(h.isMember(5));
  EXPECT_EQ(h.parentOf(5), 1u);
  EXPECT_EQ(h.depthOf(5), 2u);
  h.checkInvariants();
}

TEST(Hierarchy, AddDuplicateRejected) {
  auto h = RefreshHierarchy::build(0, {1}, uniformRate(1.0), 10.0, {});
  EXPECT_THROW(h.addMember(1, 0, 3), InvariantViolation);
}

TEST(Hierarchy, RemoveMemberAdoptsOrphans) {
  HierarchyConfig cfg;
  cfg.fanoutBound = 1;
  auto h = RefreshHierarchy::build(0, {1, 2, 3}, uniformRate(1.0), 10.0, cfg);
  // Chain 0->1->2->3; removing 1 hands 2 to the root.
  h.removeMember(1);
  EXPECT_FALSE(h.isMember(1));
  EXPECT_EQ(h.parentOf(2), 0u);
  EXPECT_EQ(h.depthOf(2), 1u);
  EXPECT_EQ(h.depthOf(3), 2u);
  h.checkInvariants();
}

TEST(Hierarchy, RemoveRootRejected) {
  auto h = RefreshHierarchy::build(0, {1}, uniformRate(1.0), 10.0, {});
  EXPECT_THROW(h.removeMember(0), InvariantViolation);
}

TEST(Hierarchy, DeterministicForEqualRates) {
  const auto a = RefreshHierarchy::build(0, {1, 2, 3, 4}, uniformRate(1.0), 10.0, {});
  const auto b = RefreshHierarchy::build(0, {1, 2, 3, 4}, uniformRate(1.0), 10.0, {});
  for (NodeId n : {1u, 2u, 3u, 4u}) EXPECT_EQ(a.parentOf(n), b.parentOf(n));
}

/// Property suite: random rate matrices, every built tree obeys all
/// structural invariants, hosts every member, and respects the fanout.
class HierarchyProperty : public ::testing::TestWithParam<int> {};

TEST_P(HierarchyProperty, StructurallySound) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 79 + 5);
  const std::size_t members = 2 + GetParam() % 14;
  const std::size_t fanout = 1 + GetParam() % 4;
  trace::RateMatrix m(members + 1);
  for (NodeId i = 0; i <= members; ++i)
    for (NodeId j = i + 1; j <= members; ++j)
      if (rng.bernoulli(0.8)) m.setRate(i, j, rng.uniform(0.001, 2.0));
  std::vector<NodeId> ms;
  for (NodeId n = 1; n <= members; ++n) ms.push_back(n);

  HierarchyConfig cfg;
  cfg.fanoutBound = fanout;
  cfg.depthAware = GetParam() % 2 == 0;
  const auto h = RefreshHierarchy::build(0, ms, fromMatrix(m), 5.0, cfg);

  h.checkInvariants();
  EXPECT_EQ(h.memberCount(), members + 1);
  for (NodeId n : ms) {
    EXPECT_TRUE(h.isMember(n));
    EXPECT_NE(h.parentOf(n), kNoNode);
    EXPECT_LE(h.childrenOf(n).size(), fanout);
    EXPECT_TRUE(h.isAncestor(0, n));
  }
  EXPECT_LE(h.childrenOf(0).size(), fanout);
  EXPECT_EQ(h.membersBelowRoot().size(), members);
}

INSTANTIATE_TEST_SUITE_P(RandomTrees, HierarchyProperty, ::testing::Range(0, 30));

/// Mutation property: arbitrary valid reparent/remove/add sequences keep
/// the structure sound.
class HierarchyMutationProperty : public ::testing::TestWithParam<int> {};

TEST_P(HierarchyMutationProperty, RepairsPreserveInvariants) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 17);
  const std::size_t members = 8;
  const std::size_t fanout = 3;
  std::vector<NodeId> ms;
  for (NodeId n = 1; n <= members; ++n) ms.push_back(n);
  HierarchyConfig cfg;
  cfg.fanoutBound = fanout;
  auto h = RefreshHierarchy::build(0, ms, uniformRate(0.5), 5.0, cfg);

  for (int step = 0; step < 50; ++step) {
    const auto below = h.membersBelowRoot();
    if (below.empty()) break;
    const NodeId n = below[static_cast<std::size_t>(
        rng.uniformInt(0, static_cast<std::int64_t>(below.size()) - 1))];
    const int op = static_cast<int>(rng.uniformInt(0, 2));
    if (op == 0) {
      // Try a random legal reparent.
      const NodeId p = below[static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(below.size()) - 1))];
      if (p != n && !h.isAncestor(n, p) && h.parentOf(n) != p &&
          h.childrenOf(p).size() < fanout) {
        h.reparent(n, p, fanout);
      }
    } else if (op == 1 && h.memberCount() > 2) {
      h.removeMember(n);
    } else {
      const NodeId fresh = static_cast<NodeId>(100 + step);
      if (!h.isMember(fresh) && h.childrenOf(h.root()).size() < fanout)
        h.addMember(fresh, h.root(), fanout);
    }
    h.checkInvariants();
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMutations, HierarchyMutationProperty, ::testing::Range(0, 20));

}  // namespace
}  // namespace dtncache::core
