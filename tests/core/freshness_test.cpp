#include "core/freshness.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/rng.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::core {
namespace {

TEST(HypoexpCdf, EmptyChainIsInstant) {
  EXPECT_DOUBLE_EQ(hypoexponentialCdf({}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(hypoexponentialCdf({}, 100.0), 1.0);
}

TEST(HypoexpCdf, ZeroRateNeverDelivers) {
  EXPECT_DOUBLE_EQ(hypoexponentialCdf({0.0}, 1e9), 0.0);
  EXPECT_DOUBLE_EQ(hypoexponentialCdf({1.0, 0.0, 2.0}, 1e9), 0.0);
}

TEST(HypoexpCdf, SingleStageIsExponential) {
  for (double t : {0.0, 0.5, 1.0, 5.0})
    EXPECT_NEAR(hypoexponentialCdf({2.0}, t), 1.0 - std::exp(-2.0 * t), 1e-12);
}

TEST(HypoexpCdf, TwoDistinctStagesClosedForm) {
  // P(Exp(a)+Exp(b) <= t) = 1 - (b e^{-at} - a e^{-bt})/(b-a)
  const double a = 1.0, b = 3.0, t = 0.7;
  const double expected = 1.0 - (b * std::exp(-a * t) - a * std::exp(-b * t)) / (b - a);
  EXPECT_NEAR(hypoexponentialCdf({a, b}, t), expected, 1e-10);
}

TEST(HypoexpCdf, EqualRatesIsErlang) {
  // Erlang(2, r): F(t) = 1 - e^{-rt}(1 + rt). The implementation nudges
  // equal rates apart; the answer must still match to ~1e-6.
  const double r = 2.0, t = 1.3;
  const double expected = 1.0 - std::exp(-r * t) * (1.0 + r * t);
  EXPECT_NEAR(hypoexponentialCdf({r, r}, t), expected, 1e-5);
}

TEST(HypoexpCdf, MonotoneInTime) {
  const std::vector<double> rates{0.5, 1.5, 0.9};
  double prev = -1.0;
  for (double t = 0.0; t <= 20.0; t += 0.25) {
    const double p = hypoexponentialCdf(rates, t);
    EXPECT_GE(p, prev - 1e-12);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
}

TEST(HypoexpCdf, LongerChainIsSlower) {
  EXPECT_GT(hypoexponentialCdf({1.0}, 2.0), hypoexponentialCdf({1.0, 1.0}, 2.0));
  EXPECT_GT(hypoexponentialCdf({1.0, 1.0}, 2.0), hypoexponentialCdf({1.0, 1.0, 1.0}, 2.0));
}

TEST(HypoexpCdf, MatchesMonteCarlo) {
  const std::vector<double> rates{0.8, 2.5, 1.2, 4.0};
  sim::Rng rng(7);
  const int n = 200000;
  const double t = 2.0;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    double sum = 0.0;
    for (double r : rates) sum += rng.exponential(r);
    if (sum <= t) ++hits;
  }
  EXPECT_NEAR(hypoexponentialCdf(rates, t), static_cast<double>(hits) / n, 0.005);
}

TEST(ExpectedDelayTruncated, SingleStage) {
  // E[min(Exp(r), H)] = (1 - e^{-rH})/r.
  const double r = 0.5, h = 3.0;
  EXPECT_NEAR(expectedDelayTruncated({r}, h), (1.0 - std::exp(-r * h)) / r, 1e-12);
}

TEST(ExpectedDelayTruncated, DeadChainSaturates) {
  EXPECT_DOUBLE_EQ(expectedDelayTruncated({0.0}, 7.0), 7.0);
}

TEST(ExpectedDelayTruncated, EmptyChainIsZero) {
  EXPECT_DOUBLE_EQ(expectedDelayTruncated({}, 7.0), 0.0);
}

TEST(ExpectedDelayTruncated, BoundedByHorizon) {
  EXPECT_LE(expectedDelayTruncated({0.001, 0.002}, 10.0), 10.0);
}

TEST(ExpectedDelayTruncated, MatchesMonteCarlo) {
  const std::vector<double> rates{1.0, 0.4};
  sim::Rng rng(13);
  const int n = 200000;
  const double h = 3.0;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    double d = rng.exponential(rates[0]) + rng.exponential(rates[1]);
    sum += std::min(d, h);
  }
  EXPECT_NEAR(expectedDelayTruncated(rates, h), sum / n, 0.01);
}

TEST(ExpectedFreshFraction, FastChainIsNearlyAlwaysFresh) {
  EXPECT_GT(expectedFreshFraction({100.0}, 1.0), 0.98);
}

TEST(ExpectedFreshFraction, DeadChainIsNeverFresh) {
  EXPECT_DOUBLE_EQ(expectedFreshFraction({0.0}, 1.0), 0.0);
}

TEST(ExpectedFreshFraction, SingleHopClosedForm) {
  // (τ - (1-e^{-rτ})/r) / τ
  const double r = 2.0, tau = 1.0;
  const double expected = (tau - (1.0 - std::exp(-r * tau)) / r) / tau;
  EXPECT_NEAR(expectedFreshFraction({r}, tau), expected, 1e-12);
}

TEST(CombinedRefreshProbability, NoHelpersIsChain) {
  EXPECT_DOUBLE_EQ(combinedRefreshProbability(0.4, {}), 0.4);
}

TEST(CombinedRefreshProbability, IndependentUnion) {
  EXPECT_NEAR(combinedRefreshProbability(0.5, {0.5}), 0.75, 1e-12);
  EXPECT_NEAR(combinedRefreshProbability(0.5, {0.5, 0.5}), 0.875, 1e-12);
}

TEST(CombinedRefreshProbability, HelpersNeverHurt) {
  sim::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    const double base = rng.uniform();
    std::vector<double> helpers;
    double p = base;
    for (int k = 0; k < 4; ++k) {
      helpers.push_back(rng.uniform());
      const double next = combinedRefreshProbability(base, helpers);
      EXPECT_GE(next, p - 1e-12);
      EXPECT_LE(next, 1.0);
      p = next;
    }
  }
}

TEST(HelperContribution, ZeroRateContributesNothing) {
  EXPECT_DOUBLE_EQ(helperContribution({1.0}, 0.0, 10.0), 0.0);
}

TEST(HelperContribution, StaleHelperContributesLess) {
  // Same reach to the target, but one helper sits at the end of a slow
  // chain — its contribution must be smaller.
  const double freshHelper = helperContribution({100.0}, 1.0, 10.0);
  const double staleHelper = helperContribution({0.01}, 1.0, 10.0);
  EXPECT_GT(freshHelper, staleHelper);
}

TEST(HelperContribution, BoundedByReachProbability) {
  const double h = helperContribution({5.0}, 0.3, 10.0);
  EXPECT_LE(h, trace::contactProbability(0.3, 5.0));
  EXPECT_GE(h, 0.0);
}

/// Property sweep: CDF stays within [0,1] and monotone for random chains.
class HypoexpProperty : public ::testing::TestWithParam<int> {};

TEST_P(HypoexpProperty, ValidDistributionFunction) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()));
  const int stages = 1 + GetParam() % 6;
  std::vector<double> rates;
  for (int i = 0; i < stages; ++i) rates.push_back(rng.uniform(0.01, 5.0));
  double prev = 0.0;
  for (double t = 0.0; t < 30.0; t += 0.5) {
    const double p = hypoexponentialCdf(rates, t);
    EXPECT_GE(p, prev - 1e-9) << "non-monotone at t=" << t;
    EXPECT_GE(p, -1e-12);
    EXPECT_LE(p, 1.0 + 1e-12);
    prev = p;
  }
  // Far beyond the mean the CDF must approach 1.
  double mean = 0.0;
  for (double r : rates) mean += 1.0 / r;
  EXPECT_GT(hypoexponentialCdf(rates, 50.0 * mean), 0.999);
}

INSTANTIATE_TEST_SUITE_P(RandomChains, HypoexpProperty, ::testing::Range(1, 25));

}  // namespace
}  // namespace dtncache::core
