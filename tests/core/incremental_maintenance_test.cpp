/// End-to-end equivalence of the incremental maintenance engine.
///
/// Every test here runs the same experiment twice — once with the
/// incremental fast paths (dirty-pair snapshots, maintenance-skip
/// decisions, plan-cache replay) and once under the full-recompute escape
/// hatch (HierarchicalConfig::fullMaintenance, the programmatic equivalent
/// of DTNCACHE_FULL_MAINTENANCE=1) — and requires the two runs to be
/// observationally identical: same metrics, same traffic, same counters,
/// and the same structured event trace, byte for byte. The escape hatch
/// additionally cross-checks every plan-cache hit against a fresh
/// recompute internally, so a pass here certifies both directions.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "obs/tracer.hpp"
#include "runner/experiment.hpp"

namespace dtncache::runner {
namespace {

ExperimentConfig baseConfig() {
  ExperimentConfig cfg;
  cfg.trace = trace::homogeneousConfig(14, 6.0, sim::days(3), 11);
  cfg.catalog.itemCount = 3;
  cfg.catalog.refreshPeriod = sim::hours(12);
  cfg.workload.queriesPerNodePerDay = 2.0;
  cfg.cache.cachingNodesPerItem = 5;
  cfg.hierarchical.maintenancePeriod = sim::minutes(30);
  return cfg;
}

/// Run `cfg` incrementally and under the escape hatch; both with a tracer
/// attached so the comparison covers the full event stream.
struct PairedRuns {
  ExperimentOutput incremental;
  ExperimentOutput full;
  std::string incrementalTrace;
  std::string fullTrace;
};

PairedRuns runPaired(ExperimentConfig cfg) {
  PairedRuns out;
  obs::Tracer incTracer("paired");
  cfg.hierarchical.fullMaintenance = false;
  cfg.tracer = &incTracer;
  out.incremental = runExperiment(cfg);
  out.incrementalTrace = incTracer.buffer();

  obs::Tracer fullTracer("paired");
  cfg.hierarchical.fullMaintenance = true;
  cfg.tracer = &fullTracer;
  out.full = runExperiment(cfg);
  out.fullTrace = fullTracer.buffer();
  return out;
}

/// Exact equality over every deterministic output field. Doubles compare
/// with == on purpose: the contract is bit-identity, not tolerance.
void expectIdentical(const PairedRuns& runs) {
  const ExperimentOutput& a = runs.incremental;
  const ExperimentOutput& b = runs.full;
  EXPECT_EQ(a.scheme, b.scheme);
  EXPECT_EQ(a.results.meanFreshFraction, b.results.meanFreshFraction);
  EXPECT_EQ(a.results.finalFreshFraction, b.results.finalFreshFraction);
  EXPECT_EQ(a.results.meanValidFraction, b.results.meanValidFraction);
  EXPECT_EQ(a.results.refreshPushes, b.results.refreshPushes);
  EXPECT_EQ(a.results.refreshWithinPeriodRatio, b.results.refreshWithinPeriodRatio);
  EXPECT_EQ(a.results.copiesTracked, b.results.copiesTracked);
  EXPECT_EQ(a.results.queries.issued, b.results.queries.issued);
  EXPECT_EQ(a.results.queries.answered, b.results.queries.answered);
  EXPECT_EQ(a.results.queries.answeredFresh, b.results.queries.answeredFresh);
  EXPECT_EQ(a.results.queries.localHits, b.results.queries.localHits);
  EXPECT_EQ(a.results.transfers.total().messages, b.results.transfers.total().messages);
  EXPECT_EQ(a.results.transfers.total().bytes, b.results.transfers.total().bytes);
  EXPECT_EQ(a.results.transfers.perNodeBytes(), b.results.transfers.perNodeBytes());
  EXPECT_EQ(a.replicationAssignments, b.replicationAssignments);
  EXPECT_EQ(a.meanPredictedProbability, b.meanPredictedProbability);
  EXPECT_EQ(a.minPredictedProbability, b.minPredictedProbability);
  EXPECT_EQ(a.unmetNodes, b.unmetNodes);
  EXPECT_EQ(a.maxHierarchyDepth, b.maxHierarchyDepth);
  EXPECT_EQ(a.reparentCount, b.reparentCount);
  EXPECT_EQ(a.churnTransitions, b.churnTransitions);
  EXPECT_EQ(a.churnRepairs, b.churnRepairs);
  EXPECT_EQ(a.contactsSuppressed, b.contactsSuppressed);
  EXPECT_EQ(a.depletedNodes, b.depletedNodes);
  EXPECT_EQ(a.meanRemainingBattery, b.meanRemainingBattery);
  EXPECT_EQ(a.eventsProcessed, b.eventsProcessed);
  // Every counter, including core.maintenance.dirty_pairs / .skipped /
  // core.plan.cache_hits: the bookkeeping itself must not diverge, or the
  // result-sink columns would differ between the two paths.
  EXPECT_EQ(a.counters, b.counters);
  // Strongest check: the full structured event stream (plans, helper
  // assignments, pushes, maintenance passes) byte for byte. Replayed plans
  // must re-emit exactly what a recompute would have emitted.
  EXPECT_EQ(runs.incrementalTrace, runs.fullTrace);
}

std::uint64_t counterOf(const ExperimentOutput& out, const std::string& name) {
  for (const auto& [k, v] : out.counters)
    if (k == name) return v;
  return 0;
}

TEST(IncrementalMaintenance, MatchesFullRecomputeAcrossEstimatorAndMaintenanceModes) {
  for (const auto estimatorMode : {trace::EstimatorMode::kEwma,
                                   trace::EstimatorMode::kSlidingWindow,
                                   trace::EstimatorMode::kCumulative}) {
    for (const auto maintenance : {core::MaintenanceMode::kRebuild,
                                   core::MaintenanceMode::kLocalRepair,
                                   core::MaintenanceMode::kStatic}) {
      ExperimentConfig cfg = baseConfig();
      cfg.estimator.mode = estimatorMode;
      cfg.hierarchical.maintenance = maintenance;
      expectIdentical(runPaired(cfg));
    }
  }
}

TEST(IncrementalMaintenance, SkipAndReplayPathsAreActuallyExercised) {
  // The equivalence above would be vacuous if the incremental run never
  // took a fast path. Sparse contacts against a short tick period leave
  // most rows untouched between ticks: a warm EWMA estimator must then
  // skip item evaluations and answer others from the plan cache.
  ExperimentConfig cfg = baseConfig();
  cfg.trace = trace::homogeneousConfig(24, 1.0, sim::days(3), 11);
  cfg.hierarchical.maintenancePeriod = sim::minutes(10);
  cfg.estimator.mode = trace::EstimatorMode::kEwma;
  cfg.hierarchical.maintenance = core::MaintenanceMode::kRebuild;
  const PairedRuns runs = runPaired(cfg);
  expectIdentical(runs);
  EXPECT_GT(counterOf(runs.incremental, "core.maintenance.skipped"), 0u);
  EXPECT_GT(counterOf(runs.incremental, "core.plan.cache_hits"), 0u);
  EXPECT_GT(counterOf(runs.incremental, "core.maintenance.dirty_pairs"), 0u);
  // Same tick cadence on both paths.
  EXPECT_EQ(counterOf(runs.incremental, "core.maintenance.runs"),
            counterOf(runs.full, "core.maintenance.runs"));
}

TEST(IncrementalMaintenance, MatchesFullRecomputeUnderChurn) {
  // Churn repairs replan through the live (unversioned) path mid-tick;
  // those plans are stored unkeyed and must not poison later tick reuse.
  ExperimentConfig cfg = baseConfig();
  cfg.estimator.mode = trace::EstimatorMode::kEwma;
  cfg.hierarchical.maintenance = core::MaintenanceMode::kLocalRepair;
  cfg.churnEnabled = true;
  cfg.churn.meanUptime = sim::hours(18);
  cfg.churn.meanDowntime = sim::hours(4);
  expectIdentical(runPaired(cfg));
}

TEST(IncrementalMaintenance, MatchesFullRecomputeWithEnergyAwarePlanning) {
  // An installed energy weight disables plan reuse (battery state lives
  // outside the versioned inputs); the engine must degrade to replanning
  // every tick and still match the escape hatch exactly.
  ExperimentConfig cfg = baseConfig();
  cfg.estimator.mode = trace::EstimatorMode::kEwma;
  cfg.energyEnabled = true;
  cfg.energyAwarePlanning = true;
  const PairedRuns runs = runPaired(cfg);
  expectIdentical(runs);
  EXPECT_EQ(counterOf(runs.incremental, "core.plan.cache_hits"), 0u);
}

TEST(IncrementalMaintenance, MatchesFullRecomputeWithOracleRates) {
  // Oracle planning bypasses the estimator snapshot entirely; the skip
  // logic must treat constant inputs consistently on both paths.
  ExperimentConfig cfg = baseConfig();
  cfg.hierarchical.useOracleRates = true;
  expectIdentical(runPaired(cfg));
}

TEST(IncrementalMaintenance, MatchesFullRecomputeAcrossSeeds) {
  for (std::uint64_t seed : {1ull, 7ull, 23ull}) {
    ExperimentConfig cfg = baseConfig();
    cfg.estimator.mode = trace::EstimatorMode::kEwma;
    cfg.seed = seed;
    expectIdentical(runPaired(cfg));
  }
}

TEST(IncrementalMaintenance, ConfigFlagActivatesEscapeHatch) {
  core::HierarchicalConfig cfg;
  core::HierarchicalRefreshScheme incremental(cfg);
  EXPECT_FALSE(incremental.fullMaintenanceActive());
  cfg.fullMaintenance = true;
  core::HierarchicalRefreshScheme full(cfg);
  EXPECT_TRUE(full.fullMaintenanceActive());
}

}  // namespace
}  // namespace dtncache::runner
