#include "core/hierarchical_scheme.hpp"

#include <gtest/gtest.h>

#include "data/source.hpp"
#include "net/network.hpp"
#include "runner/experiment.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace dtncache::core {
namespace {

/// A full stack over a generated homogeneous trace, hierarchical scheme.
struct SchemeRig {
  explicit SchemeRig(HierarchicalConfig schemeCfg, std::uint64_t seed = 1,
                     double contactsPerPairPerDay = 6.0,
                     sim::SimTime duration = sim::days(10))
      : world(trace::generate(
            trace::homogeneousConfig(12, contactsPerPairPerDay, duration, seed))),
        catalog(makeCatalog()),
        estimator(12, estimatorConfig(), 0.0),
        network(simulator, world.trace),
        collector(catalog, 0.0),
        coop(simulator, network, catalog, estimator, collector, world.rates, cacheConfig()),
        scheme(schemeCfg, &world.rates),
        horizon(duration) {}

  static data::Catalog makeCatalog() {
    data::CatalogConfig cfg;
    cfg.itemCount = 3;
    cfg.nodeCount = 12;
    cfg.refreshPeriod = sim::hours(12);
    return data::makeUniformCatalog(cfg);
  }
  static trace::EstimatorConfig estimatorConfig() {
    trace::EstimatorConfig e;
    e.mode = trace::EstimatorMode::kCumulative;
    return e;
  }
  static cache::CoopCacheConfig cacheConfig() {
    cache::CoopCacheConfig c;
    c.cachingNodesPerItem = 5;
    return c;
  }

  void run() {
    sources = std::make_unique<data::SourceProcess>(simulator, catalog, horizon);
    coop.setScheme(&scheme);
    coop.start(*sources, nullptr, horizon);
    simulator.runUntil(horizon);
  }

  trace::SyntheticTrace world;
  sim::Simulator simulator;
  data::Catalog catalog;
  trace::ContactRateEstimator estimator;
  net::Network network;
  metrics::MetricsCollector collector;
  cache::CooperativeCache coop;
  HierarchicalRefreshScheme scheme;
  std::unique_ptr<data::SourceProcess> sources;
  sim::SimTime horizon;
};

HierarchicalConfig oracleConfig() {
  HierarchicalConfig c;
  c.useOracleRates = true;
  return c;
}

TEST(HierarchicalScheme, BuildsOneHierarchyPerItem) {
  SchemeRig rig(oracleConfig());
  rig.run();
  for (data::ItemId item = 0; item < rig.catalog.size(); ++item) {
    const auto& h = rig.scheme.hierarchyOf(item);
    EXPECT_EQ(h.root(), rig.coop.sourceOf(item));
    EXPECT_EQ(h.memberCount(), 1 + rig.coop.cachingNodesOf(item).size());
    h.checkInvariants();
    for (NodeId n : rig.coop.cachingNodesOf(item)) EXPECT_TRUE(h.isMember(n));
  }
}

TEST(HierarchicalScheme, RefreshesImproveFreshnessOverNoRefresh) {
  SchemeRig rig(oracleConfig());
  rig.run();
  const auto r = rig.collector.finalize(rig.horizon, rig.network.transfers());
  // 12 nodes at 6 contacts/pair/day with τ=12 h is plenty of connectivity.
  EXPECT_GT(r.meanFreshFraction, 0.5);
  EXPECT_GT(r.refreshPushes, 0u);
  EXPECT_GT(r.transfers.of(net::Traffic::kRefresh).bytes, 0u);
}

TEST(HierarchicalScheme, OnlyResponsibleEdgesPushDirectly) {
  // With relays disabled, every refresh byte moves along a tree or helper
  // edge; verify by re-running the decision for every upgrade seen.
  HierarchicalConfig cfg = oracleConfig();
  cfg.relayAssisted = false;
  cfg.maintenance = MaintenanceMode::kStatic;  // keep the plan frozen
  SchemeRig rig(cfg);
  rig.run();
  const auto r = rig.collector.finalize(rig.horizon, rig.network.transfers());
  EXPECT_GT(r.refreshPushes, 0u);
  // Each direct push transfers exactly one item payload + header.
  const auto& refresh = r.transfers.of(net::Traffic::kRefresh);
  const std::uint64_t itemBytes =
      rig.catalog.spec(0).sizeBytes + net::kHeaderBytes;
  EXPECT_EQ(refresh.bytes, refresh.messages * itemBytes);
}

TEST(HierarchicalScheme, RelayAssistIncreasesFreshnessOnSparseTraces) {
  HierarchicalConfig withRelays = oracleConfig();
  HierarchicalConfig without = oracleConfig();
  without.relayAssisted = false;
  // Sparse enough that direct tree edges are slow.
  SchemeRig sparse1(withRelays, 3, /*contactsPerPairPerDay=*/0.8, sim::days(20));
  sparse1.run();
  SchemeRig sparse2(without, 3, 0.8, sim::days(20));
  sparse2.run();
  const auto with = sparse1.collector.finalize(sparse1.horizon, sparse1.network.transfers());
  const auto sans = sparse2.collector.finalize(sparse2.horizon, sparse2.network.transfers());
  EXPECT_GT(with.meanFreshFraction, sans.meanFreshFraction);
  EXPECT_GT(sparse1.scheme.relayInjections(), 0u);
  EXPECT_EQ(sparse2.scheme.relayInjections(), 0u);
}

TEST(HierarchicalScheme, AnalyticalPredictionTracksAchievedRatio) {
  // The F5 core claim: without relays, the hypoexponential chain model
  // predicts the measured P(refresh within τ) closely.
  HierarchicalConfig cfg = oracleConfig();
  cfg.relayAssisted = false;
  cfg.replication.enabled = false;
  cfg.maintenance = MaintenanceMode::kStatic;
  SchemeRig rig(cfg, 7, 6.0, sim::days(30));
  rig.run();
  const auto r = rig.collector.finalize(rig.horizon, rig.network.transfers());

  double predicted = 0.0;
  std::size_t n = 0;
  for (data::ItemId item = 0; item < rig.catalog.size(); ++item) {
    const auto& plan = rig.scheme.planOf(item);
    for (NodeId node : rig.scheme.hierarchyOf(item).membersBelowRoot()) {
      predicted += plan.predictedProbability(node);
      ++n;
    }
  }
  predicted /= static_cast<double>(n);
  EXPECT_NEAR(r.refreshWithinPeriodRatio, predicted, 0.08);
}

TEST(HierarchicalScheme, ReplicationLiftsAchievedProbability) {
  HierarchicalConfig off = oracleConfig();
  off.relayAssisted = false;
  off.replication.enabled = false;
  HierarchicalConfig on = off;
  on.replication.enabled = true;
  on.replication.theta = 0.95;
  SchemeRig rigOff(off, 11, 1.5, sim::days(20));
  rigOff.run();
  SchemeRig rigOn(on, 11, 1.5, sim::days(20));
  rigOn.run();
  const auto roff = rigOff.collector.finalize(rigOff.horizon, rigOff.network.transfers());
  const auto ron = rigOn.collector.finalize(rigOn.horizon, rigOn.network.transfers());
  EXPECT_GT(ron.refreshWithinPeriodRatio, roff.refreshWithinPeriodRatio);
}

TEST(HierarchicalScheme, MaintenanceRunsOnSchedule) {
  HierarchicalConfig cfg = oracleConfig();
  cfg.maintenance = MaintenanceMode::kRebuild;
  cfg.maintenancePeriod = sim::days(1);
  SchemeRig rig(cfg);
  rig.run();
  EXPECT_EQ(rig.scheme.maintenanceRuns(), 10u);  // days 1..10
}

TEST(HierarchicalScheme, StaticModeNeverMaintains) {
  HierarchicalConfig cfg = oracleConfig();
  cfg.maintenance = MaintenanceMode::kStatic;
  SchemeRig rig(cfg);
  rig.run();
  EXPECT_EQ(rig.scheme.maintenanceRuns(), 0u);
}

TEST(HierarchicalScheme, LocalRepairConvergesTowardBetterParents) {
  // Plan from the (initially empty) online estimator: the first tree is
  // arbitrary. As estimates accumulate, local repair must reparent nodes.
  HierarchicalConfig cfg;  // estimator-driven
  cfg.maintenance = MaintenanceMode::kLocalRepair;
  cfg.maintenancePeriod = sim::days(1);
  SchemeRig rig(cfg, 5);
  rig.run();
  EXPECT_GT(rig.scheme.maintenanceRuns(), 0u);
  EXPECT_GT(rig.scheme.reparentCount(), 0u);
  for (data::ItemId item = 0; item < rig.catalog.size(); ++item)
    rig.scheme.hierarchyOf(item).checkInvariants();
}

TEST(HierarchicalScheme, OracleConfigRequiresMatrix) {
  HierarchicalConfig cfg;
  cfg.useOracleRates = true;
  EXPECT_THROW(HierarchicalRefreshScheme(cfg, nullptr), InvariantViolation);
}

TEST(HierarchicalScheme, ChurnRepairRemovesAndReattachesMembers) {
  HierarchicalConfig cfg = oracleConfig();
  cfg.maintenance = MaintenanceMode::kStatic;
  SchemeRig rig(cfg);
  rig.run();  // onStart builds the hierarchies

  const data::ItemId item = 0;
  const auto members = rig.coop.cachingNodesOf(item);
  const NodeId victim = members.front();
  const auto& h = rig.scheme.hierarchyOf(item);
  ASSERT_TRUE(h.isMember(victim));
  const std::size_t before = h.memberCount();

  rig.scheme.onNodeStateChanged(rig.coop, victim, /*up=*/false, rig.horizon);
  EXPECT_FALSE(h.isMember(victim));
  EXPECT_EQ(h.memberCount(), before - 1);
  h.checkInvariants();
  // The departed member keeps no responsibility and receives none.
  for (NodeId n : h.membersBelowRoot()) EXPECT_NE(h.parentOf(n), victim);

  rig.scheme.onNodeStateChanged(rig.coop, victim, /*up=*/true, rig.horizon);
  EXPECT_TRUE(h.isMember(victim));
  EXPECT_EQ(h.memberCount(), before);
  EXPECT_NE(h.parentOf(victim), kNoNode);
  h.checkInvariants();
  // One repair per flip per item whose caching set contains the victim.
  std::size_t memberships = 0;
  for (data::ItemId i = 0; i < rig.catalog.size(); ++i)
    if (rig.coop.isCachingNode(victim, i)) ++memberships;
  EXPECT_EQ(rig.scheme.churnRepairs(), 2 * memberships);
}

TEST(HierarchicalScheme, ChurnFlipForNonMemberIsNoop) {
  HierarchicalConfig cfg = oracleConfig();
  SchemeRig rig(cfg);
  rig.run();
  // A node that caches nothing (e.g. an item's source for that item) may
  // still flip; the scheme must not touch hierarchies it is not in.
  NodeId outsider = kNoNode;
  for (NodeId n = 0; n < 12; ++n) {
    bool member = false;
    for (data::ItemId item = 0; item < rig.catalog.size(); ++item)
      member = member || rig.coop.isCachingNode(n, item);
    if (!member) {
      outsider = n;
      break;
    }
  }
  ASSERT_NE(outsider, kNoNode);
  rig.scheme.onNodeStateChanged(rig.coop, outsider, false, rig.horizon);
  EXPECT_EQ(rig.scheme.churnRepairs(), 0u);
}

TEST(HierarchicalScheme, EnergyWeightSteersHelperSelection) {
  // Two candidate helpers with identical contribution; the energy weight
  // must break the tie toward the fuller battery.
  trace::RateMatrix m(4);
  m.setRate(0, 1, 10.0);   // helper A: always fresh
  m.setRate(0, 2, 10.0);   // helper B: always fresh
  m.setRate(0, 3, 0.05);   // target: weak parent link
  m.setRate(1, 3, 2.0);
  m.setRate(2, 3, 2.0);
  HierarchyConfig hcfg;
  hcfg.fanoutBound = 3;
  const RateFn rate = [&m](NodeId i, NodeId j) { return m.rate(i, j); };
  auto h = RefreshHierarchy::build(0, {}, rate, 1.0, hcfg);
  for (NodeId n : {1u, 2u, 3u}) h.addMember(n, 0, 3);

  ReplicationConfig rcfg;
  rcfg.theta = 0.9;
  rcfg.maxHelpersPerNode = 1;
  rcfg.helperWeight = [](NodeId n) { return n == 1 ? 0.1 : 1.0; };  // node 1 drained
  const auto plan = planReplication(h, rate, 1.0, rcfg);
  ASSERT_EQ(plan.helpersOf(3).size(), 1u);
  EXPECT_EQ(plan.helpersOf(3)[0], 2u);
}

}  // namespace
}  // namespace dtncache::core
