#include "core/replication.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/freshness.hpp"
#include "sim/rng.hpp"
#include "trace/rate_matrix.hpp"

namespace dtncache::core {
namespace {

RateFn fromMatrix(const trace::RateMatrix& m) {
  return [&m](NodeId i, NodeId j) { return m.rate(i, j); };
}

/// Star tree: root 0 with members 1..n attached directly. Built explicitly
/// (not greedily) so each test fully controls the topology it analyzes.
RefreshHierarchy star(const trace::RateMatrix& m, std::size_t n, double tau) {
  HierarchyConfig cfg;
  cfg.fanoutBound = n;
  auto h = RefreshHierarchy::build(0, {}, fromMatrix(m), tau, cfg);
  for (NodeId i = 1; i <= n; ++i) h.addMember(i, 0, n);
  h.checkInvariants();
  return h;
}

TEST(Replication, StrongChainNeedsNoHelpers) {
  trace::RateMatrix m(3);
  m.setRate(0, 1, 10.0);
  m.setRate(0, 2, 10.0);
  const auto h = star(m, 2, 1.0);
  ReplicationConfig cfg;
  cfg.theta = 0.9;
  const auto plan = planReplication(h, fromMatrix(m), 1.0, cfg);
  EXPECT_EQ(plan.totalAssignments(), 0u);
  EXPECT_TRUE(plan.unmetNodes().empty());
  EXPECT_GE(plan.predictedProbability(1), 0.9);
}

TEST(Replication, WeakNodeGetsHelpers) {
  trace::RateMatrix m(4);
  m.setRate(0, 1, 10.0);   // node 1: strong
  m.setRate(0, 2, 10.0);   // node 2: strong
  m.setRate(0, 3, 0.1);    // node 3: weak direct link...
  m.setRate(1, 3, 5.0);    // ...but node 1 meets it often
  const auto h = star(m, 3, 1.0);
  ReplicationConfig cfg;
  cfg.theta = 0.9;
  const auto plan = planReplication(h, fromMatrix(m), 1.0, cfg);
  EXPECT_TRUE(plan.isHelper(1, 3));
  EXPECT_GE(plan.predictedProbability(3), 0.9);
  EXPECT_TRUE(plan.unmetNodes().empty());
  // Strong nodes got nothing.
  EXPECT_TRUE(plan.helpersOf(1).empty());
  EXPECT_TRUE(plan.helpersOf(2).empty());
}

TEST(Replication, DisabledPlansNothing) {
  trace::RateMatrix m(4);
  m.setRate(0, 1, 10.0);
  m.setRate(0, 2, 10.0);
  m.setRate(0, 3, 0.1);
  m.setRate(1, 3, 5.0);
  const auto h = star(m, 3, 1.0);
  ReplicationConfig cfg;
  cfg.theta = 0.9;
  cfg.enabled = false;
  const auto plan = planReplication(h, fromMatrix(m), 1.0, cfg);
  EXPECT_EQ(plan.totalAssignments(), 0u);
  EXPECT_FALSE(plan.unmetNodes().empty());  // requirement honestly unmet
  EXPECT_LT(plan.predictedProbability(3), 0.9);
}

TEST(Replication, ImpossibleRequirementReportedUnmet) {
  trace::RateMatrix m(3);
  m.setRate(0, 1, 0.01);
  m.setRate(0, 2, 0.01);
  m.setRate(1, 2, 0.01);
  const auto h = star(m, 2, 1.0);
  ReplicationConfig cfg;
  cfg.theta = 0.999;
  const auto plan = planReplication(h, fromMatrix(m), 1.0, cfg);
  EXPECT_EQ(plan.unmetNodes().size(), 2u);
}

TEST(Replication, HelperCapRespected) {
  const std::size_t n = 8;
  trace::RateMatrix m(n + 1);
  for (NodeId i = 1; i <= n; ++i) m.setRate(0, i, 0.2);
  for (NodeId i = 1; i <= n; ++i)
    for (NodeId j = i + 1; j <= n; ++j) m.setRate(i, j, 0.2);
  const auto h = star(m, n, 1.0);
  ReplicationConfig cfg;
  cfg.theta = 0.9999;  // unreachable: forces exhaustion
  cfg.maxHelpersPerNode = 3;
  const auto plan = planReplication(h, fromMatrix(m), 1.0, cfg);
  for (NodeId i = 1; i <= n; ++i) EXPECT_LE(plan.helpersOf(i).size(), 3u);
}

TEST(Replication, ParentNeverAssignedAsHelper) {
  trace::RateMatrix m(3);
  m.setRate(0, 1, 0.3);
  m.setRate(0, 2, 0.3);
  m.setRate(1, 2, 5.0);
  const auto h = star(m, 2, 1.0);
  ReplicationConfig cfg;
  cfg.theta = 0.99;
  const auto plan = planReplication(h, fromMatrix(m), 1.0, cfg);
  EXPECT_FALSE(plan.isHelper(0, 1));  // 0 is already 1's parent
  EXPECT_FALSE(plan.isHelper(0, 2));
}

TEST(Replication, DescendantsExcludedAsHelpers) {
  // Chain 0 -> 1 -> 2 with a strong upward 2→1 rate: 2 must not be chosen
  // to help 1 — it receives versions *through* 1.
  trace::RateMatrix m(3);
  m.setRate(0, 1, 0.2);
  m.setRate(1, 2, 5.0);
  HierarchyConfig hcfg;
  hcfg.fanoutBound = 1;
  const auto h = RefreshHierarchy::build(0, {1, 2}, fromMatrix(m), 1.0, hcfg);
  ASSERT_EQ(h.parentOf(2), 1u);
  ReplicationConfig cfg;
  cfg.theta = 0.99;
  const auto plan = planReplication(h, fromMatrix(m), 1.0, cfg);
  EXPECT_FALSE(plan.isHelper(2, 1));
}

TEST(Replication, PredictionMatchesCombinedFormula) {
  trace::RateMatrix m(4);
  m.setRate(0, 1, 10.0);
  m.setRate(0, 2, 10.0);
  m.setRate(0, 3, 0.1);
  m.setRate(1, 3, 1.0);
  m.setRate(2, 3, 0.8);
  const double tau = 1.0;
  const auto h = star(m, 3, tau);
  ReplicationConfig cfg;
  cfg.theta = 0.95;
  cfg.maxHelpersPerNode = 2;
  const auto plan = planReplication(h, fromMatrix(m), tau, cfg);
  const double chain = chainRefreshProbability({0.1}, tau);
  std::vector<double> hs;
  for (NodeId k : plan.helpersOf(3))
    hs.push_back(helperContribution(h.chainRates(k, fromMatrix(m)), m.rate(k, 3), tau));
  EXPECT_NEAR(plan.predictedProbability(3), combinedRefreshProbability(chain, hs), 1e-12);
}

TEST(Replication, HighestRateOrderCanDifferFromContribution) {
  // Helper A: high rate to target but itself starved (slow chain).
  // Helper B: moderate rate, always fresh. Contribution order picks B
  // first; raw-rate order picks A first.
  trace::RateMatrix m(4);
  m.setRate(0, 1, 0.05);   // target's weak parent link (target = 1)
  m.setRate(0, 2, 0.01);   // helper A's slow chain
  m.setRate(2, 1, 8.0);    // helper A: great reach
  m.setRate(0, 3, 10.0);   // helper B: always fresh
  m.setRate(3, 1, 1.0);    // helper B: moderate reach
  const auto h = star(m, 3, 1.0);
  ReplicationConfig byContribution;
  byContribution.theta = 0.9;
  byContribution.maxHelpersPerNode = 1;
  byContribution.order = HelperOrder::kBestContribution;
  const auto p1 = planReplication(h, fromMatrix(m), 1.0, byContribution);
  ASSERT_EQ(p1.helpersOf(1).size(), 1u);
  EXPECT_EQ(p1.helpersOf(1)[0], 3u);

  ReplicationConfig byRate = byContribution;
  byRate.order = HelperOrder::kHighestRate;
  const auto p2 = planReplication(h, fromMatrix(m), 1.0, byRate);
  ASSERT_EQ(p2.helpersOf(1).size(), 1u);
  EXPECT_EQ(p2.helpersOf(1)[0], 2u);
  EXPECT_GT(p1.predictedProbability(1), p2.predictedProbability(1));
}

/// Property suite: on random topologies, the plan must (a) never assign a
/// helper to a node that already meets θ through its chain, (b) predict at
/// least the chain probability for everyone, and (c) meet θ whenever it
/// claims to (no unmet node has predicted ≥ θ, no met node < θ).
class ReplicationProperty : public ::testing::TestWithParam<int> {};

TEST_P(ReplicationProperty, PlanIsSoundOnRandomTopologies) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 913 + 3);
  const std::size_t members = 3 + GetParam() % 10;
  trace::RateMatrix m(members + 1);
  for (NodeId i = 0; i <= members; ++i)
    for (NodeId j = i + 1; j <= members; ++j)
      if (rng.bernoulli(0.7)) m.setRate(i, j, rng.uniform(0.01, 3.0));
  std::vector<NodeId> ms;
  for (NodeId n = 1; n <= members; ++n) ms.push_back(n);
  HierarchyConfig hcfg;
  hcfg.fanoutBound = 3;
  const double tau = 1.0;
  const auto h = RefreshHierarchy::build(0, ms, fromMatrix(m), tau, hcfg);

  ReplicationConfig cfg;
  cfg.theta = 0.5 + 0.4 * rng.uniform();
  const auto plan = planReplication(h, fromMatrix(m), tau, cfg);

  for (NodeId n : ms) {
    const double chain = chainRefreshProbability(h.chainRates(n, fromMatrix(m)), tau);
    const double predicted = plan.predictedProbability(n);
    EXPECT_GE(predicted, chain - 1e-12);
    if (chain >= cfg.theta) {
      EXPECT_TRUE(plan.helpersOf(n).empty());
    }
    const bool unmet = std::find(plan.unmetNodes().begin(), plan.unmetNodes().end(), n) !=
                       plan.unmetNodes().end();
    EXPECT_EQ(unmet, predicted < cfg.theta);
    for (NodeId k : plan.helpersOf(n)) {
      EXPECT_NE(k, n);
      EXPECT_NE(k, h.parentOf(n));
      EXPECT_FALSE(h.isAncestor(n, k));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomTopologies, ReplicationProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace dtncache::core
