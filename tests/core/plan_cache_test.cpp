#include "core/plan_cache.hpp"

#include <gtest/gtest.h>

#include "trace/rate_matrix.hpp"

namespace dtncache::core {
namespace {

RateFn fromMatrix(const trace::RateMatrix& m) {
  return [&m](NodeId i, NodeId j) { return m.rate(i, j); };
}

/// A small plan with real content (one weak member forces a helper), so
/// cache round-trips are checked against a non-trivial payload.
ReplicationPlan makePlan(double weakRate = 0.1) {
  trace::RateMatrix m(4);
  m.setRate(0, 1, 10.0);
  m.setRate(0, 2, 10.0);
  m.setRate(0, 3, weakRate);
  m.setRate(1, 3, 5.0);
  HierarchyConfig hcfg;
  hcfg.fanoutBound = 3;
  auto h = RefreshHierarchy::build(0, {}, fromMatrix(m), 1.0, hcfg);
  for (NodeId i = 1; i <= 3; ++i) h.addMember(i, 0, 3);
  ReplicationConfig cfg;
  cfg.theta = 0.9;
  return planReplication(h, fromMatrix(m), 1.0, cfg);
}

TEST(PlanCache, StoreThenFindRoundTrips) {
  PlanCache cache;
  cache.resize(4);
  const PlanCache::Key key{7, 3, sim::hours(6)};
  auto plan = makePlan();
  ASSERT_GT(plan.totalAssignments(), 0u);
  const ReplicationPlan reference = plan;
  cache.store(2, key, std::move(plan));
  const ReplicationPlan* hit = cache.find(2, key);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->sameAs(reference));
  EXPECT_TRUE(cache.isKeyed(2));
  // Other items are unaffected.
  EXPECT_EQ(cache.find(0, key), nullptr);
  EXPECT_FALSE(cache.isKeyed(0));
}

TEST(PlanCache, AnyKeyFieldMismatchMisses) {
  PlanCache cache;
  cache.resize(2);
  const PlanCache::Key key{7, 3, sim::hours(6)};
  cache.store(1, key, makePlan());
  EXPECT_NE(cache.find(1, key), nullptr);
  EXPECT_EQ(cache.find(1, PlanCache::Key{8, 3, sim::hours(6)}), nullptr);
  EXPECT_EQ(cache.find(1, PlanCache::Key{7, 4, sim::hours(6)}), nullptr);
  EXPECT_EQ(cache.find(1, PlanCache::Key{7, 3, sim::hours(7)}), nullptr);
  // A miss never disturbs the stored entry.
  EXPECT_NE(cache.find(1, key), nullptr);
}

TEST(PlanCache, StoreUncachedServesReadsButNeverHits) {
  // Churn repairs store plans outside the versioned tick path: the plan
  // must be live for the per-contact read path but must not be replayable.
  PlanCache cache;
  cache.resize(3);
  const PlanCache::Key key{1, 1, 1.0};
  cache.store(0, key, makePlan());
  ASSERT_TRUE(cache.isKeyed(0));
  const ReplicationPlan repair = makePlan(0.05);
  cache.storeUncached(0, makePlan(0.05));
  EXPECT_FALSE(cache.isKeyed(0));
  EXPECT_EQ(cache.find(0, key), nullptr);  // old key must not resurrect
  EXPECT_TRUE(cache.planOf(0).sameAs(repair));
}

TEST(PlanCache, StoreReplacesAndRekeysTheSlot) {
  PlanCache cache;
  cache.resize(2);
  const PlanCache::Key oldKey{1, 1, 1.0};
  const PlanCache::Key newKey{2, 1, 1.0};
  cache.store(0, oldKey, makePlan());
  const ReplicationPlan updated = makePlan(0.05);
  cache.store(0, newKey, makePlan(0.05));
  EXPECT_EQ(cache.find(0, oldKey), nullptr);
  const ReplicationPlan* hit = cache.find(0, newKey);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->sameAs(updated));
}

TEST(PlanCache, ResizeDropsAllEntries) {
  PlanCache cache;
  cache.resize(2);
  const PlanCache::Key key{1, 1, 1.0};
  cache.store(1, key, makePlan());
  cache.resize(2);
  EXPECT_EQ(cache.itemCount(), 2u);
  EXPECT_EQ(cache.find(1, key), nullptr);
  EXPECT_FALSE(cache.isKeyed(1));
}

TEST(PlanCache, OutOfRangeItemIsAMiss) {
  PlanCache cache;
  cache.resize(2);
  EXPECT_EQ(cache.find(9, PlanCache::Key{}), nullptr);
  EXPECT_FALSE(cache.isKeyed(9));
}

TEST(PlanCache, ManyKeysStayDisambiguatedByFullValidation) {
  // Hash collisions in the packed low word can only cause misses, never
  // false hits: sweep many (version, revision, tau) keys through one slot
  // and check only the latest key ever hits.
  PlanCache cache;
  cache.resize(1);
  const ReplicationPlan reference = makePlan();
  PlanCache::Key last{};
  for (std::uint64_t v = 1; v <= 64; ++v) {
    last = PlanCache::Key{v, v * 3 + 1, static_cast<sim::SimTime>(v) * 0.5};
    cache.store(0, last, makePlan());
    for (std::uint64_t w = 1; w < v; ++w)
      EXPECT_EQ(cache.find(0, PlanCache::Key{w, w * 3 + 1,
                                             static_cast<sim::SimTime>(w) * 0.5}),
                nullptr);
  }
  const ReplicationPlan* hit = cache.find(0, last);
  ASSERT_NE(hit, nullptr);
  EXPECT_TRUE(hit->sameAs(reference));
}

}  // namespace
}  // namespace dtncache::core
