#include "core/hierarchy_dot.hpp"

#include <gtest/gtest.h>

#include "trace/rate_matrix.hpp"

namespace dtncache::core {
namespace {

RateFn fromMatrix(const trace::RateMatrix& m) {
  return [&m](NodeId i, NodeId j) { return m.rate(i, j); };
}

struct DotFixture {
  DotFixture() : m(4) {
    m.setRate(0, 1, 1.0);
    m.setRate(0, 2, 1.0);
    m.setRate(0, 3, 0.01);
    m.setRate(1, 3, 2.0);
    HierarchyConfig cfg;
    cfg.fanoutBound = 3;
    h = RefreshHierarchy::build(0, {}, fromMatrix(m), 1.0, cfg);
    h.addMember(1, 0, 3);
    h.addMember(2, 0, 3);
    h.addMember(3, 0, 3);
    ReplicationConfig rc;
    rc.theta = 0.9;
    plan = planReplication(h, fromMatrix(m), 1.0, rc);
  }
  trace::RateMatrix m;
  RefreshHierarchy h;
  ReplicationPlan plan;
};

TEST(HierarchyDot, ContainsAllNodesAndTreeEdges) {
  DotFixture f;
  const std::string dot = toDot(f.h, nullptr, fromMatrix(f.m), 1.0);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("doublecircle"), std::string::npos);  // the source
  for (const char* edge : {"n0 -> n1", "n0 -> n2", "n0 -> n3"})
    EXPECT_NE(dot.find(edge), std::string::npos) << edge;
}

TEST(HierarchyDot, HelperEdgesAreDashed) {
  DotFixture f;
  ASSERT_TRUE(f.plan.isHelper(1, 3));  // weak node 3 helped by node 1
  const std::string dot = toDot(f.h, &f.plan, fromMatrix(f.m), 1.0);
  const auto pos = dot.find("n1 -> n3");
  ASSERT_NE(pos, std::string::npos);
  EXPECT_NE(dot.find("style=dashed", pos), std::string::npos);
}

TEST(HierarchyDot, EdgeLabelsCanBeDisabled) {
  DotFixture f;
  DotOptions opt;
  opt.edgeLabels = false;
  const std::string dot = toDot(f.h, nullptr, fromMatrix(f.m), 1.0, opt);
  EXPECT_EQ(dot.find("label=\"0."), std::string::npos);
}

TEST(HierarchyDot, CustomGraphName) {
  DotFixture f;
  DotOptions opt;
  opt.graphName = "my_graph";
  const std::string dot = toDot(f.h, nullptr, fromMatrix(f.m), 1.0, opt);
  EXPECT_NE(dot.find("digraph my_graph"), std::string::npos);
}

TEST(HierarchyDot, WellFormedBraces) {
  DotFixture f;
  const std::string dot = toDot(f.h, &f.plan, fromMatrix(f.m), 1.0);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'), 1);
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '}'), 1);
  EXPECT_EQ(dot.back(), '\n');
}

}  // namespace
}  // namespace dtncache::core
