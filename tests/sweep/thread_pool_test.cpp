#include "sweep/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>
#include <vector>

namespace dtncache::sweep {
namespace {

TEST(ThreadPool, TasksCompleteAndReturnValues) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i)
    futures.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 100; ++i) EXPECT_EQ(futures[i].get(), i * i);
}

TEST(ThreadPool, SingleWorkerPreservesSubmissionOrder) {
  // With one worker the queue is FIFO, so side effects happen in order.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 16; ++i)
    futures.push_back(pool.submit([i, &order] { order.push_back(i); }));
  for (auto& f : futures) f.get();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ExceptionPropagatesThroughTheFuture) {
  ThreadPool pool(2);
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  auto good = pool.submit([] { return 7; });
  EXPECT_EQ(good.get(), 7);  // a throwing task doesn't poison the pool
  try {
    bad.get();
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom");
  }
}

TEST(ThreadPool, ShutdownDrainsPendingWork) {
  std::atomic<int> done{0};
  ThreadPool pool(2);
  for (int i = 0; i < 64; ++i)
    pool.submit([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      done.fetch_add(1);
    });
  pool.shutdown();  // graceful: every queued task runs before workers join
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPool, DestructorAlsoDrains) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 32; ++i) pool.submit([&done] { done.fetch_add(1); });
  }
  EXPECT_EQ(done.load(), 32);
}

TEST(ThreadPool, SubmitAfterShutdownThrows) {
  ThreadPool pool(1);
  pool.shutdown();
  EXPECT_THROW(pool.submit([] { return 1; }), InvariantViolation);
}

TEST(ThreadPool, ShutdownIsIdempotent) {
  ThreadPool pool(2);
  pool.submit([] {}).get();
  pool.shutdown();
  pool.shutdown();
  EXPECT_EQ(pool.workerCount(), 0u);
}

TEST(ThreadPool, ZeroWorkersIsRejected) {
  EXPECT_THROW(ThreadPool pool(0), InvariantViolation);
}

TEST(ThreadPool, DefaultWorkersHasFloorOfOne) {
  EXPECT_GE(ThreadPool::defaultWorkers(), 1u);
}

}  // namespace
}  // namespace dtncache::sweep
