#include "sweep/work_unit.hpp"

#include <gtest/gtest.h>

#include "sim/assert.hpp"
#include "trace/generators.hpp"

namespace dtncache::sweep {
namespace {

runner::ExperimentConfig tinyConfig() {
  runner::ExperimentConfig cfg;
  cfg.trace = trace::homogeneousConfig(12, 6.0, sim::days(1), 9);
  cfg.catalog.itemCount = 2;
  cfg.catalog.refreshPeriod = sim::hours(12);
  cfg.workload.queriesPerNodePerDay = 2.0;
  cfg.cache.cachingNodesPerItem = 4;
  return cfg;
}

SweepManifest sampleManifest() {
  SweepManifest manifest;
  manifest.grid.base = tinyConfig();
  manifest.grid.schemes = {runner::SchemeKind::kHierarchical,
                           runner::SchemeKind::kEpidemic};
  manifest.grid.seeds = {7, 8, 9};
  manifest.grid.axes = {{"catalog.itemCount", {"2", "4"}}};
  manifest.wallClock = false;
  manifest.traceEnabled = true;
  manifest.traceFilter = 0x3;
  return manifest;
}

TEST(SweepManifest, EncodeDecodeRoundTripsCanonically) {
  const SweepManifest manifest = sampleManifest();
  const std::string text = encodeManifest(manifest);
  const SweepManifest decoded = decodeManifest(text);

  EXPECT_EQ(decoded.wallClock, manifest.wallClock);
  EXPECT_EQ(decoded.traceEnabled, manifest.traceEnabled);
  EXPECT_EQ(decoded.traceFilter, manifest.traceFilter);
  EXPECT_EQ(decoded.grid.schemes, manifest.grid.schemes);
  EXPECT_EQ(decoded.grid.seeds, manifest.grid.seeds);
  ASSERT_EQ(decoded.grid.axes.size(), 1u);
  EXPECT_EQ(decoded.grid.axes[0].key, "catalog.itemCount");
  EXPECT_EQ(decoded.grid.axes[0].values, manifest.grid.axes[0].values);

  // Canonical: re-encoding the decoded manifest reproduces the exact bytes,
  // so the sweep fingerprint survives a wire trip.
  EXPECT_EQ(encodeManifest(decoded), text);
  EXPECT_EQ(sweepFingerprint(encodeManifest(decoded)), sweepFingerprint(text));
}

TEST(SweepManifest, FingerprintSeparatesSweeps) {
  const SweepManifest a = sampleManifest();
  SweepManifest b = a;
  b.grid.seeds.push_back(10);
  SweepManifest c = a;
  c.wallClock = true;
  const auto fpA = sweepFingerprint(encodeManifest(a));
  EXPECT_NE(fpA, sweepFingerprint(encodeManifest(b)));
  EXPECT_NE(fpA, sweepFingerprint(encodeManifest(c)));
}

TEST(SweepManifest, DecodeRejectsMalformedText) {
  const std::string good = encodeManifest(sampleManifest());
  EXPECT_THROW(decodeManifest(""), InvariantViolation);
  EXPECT_THROW(decodeManifest("dtncache-sweep-manifest 2\nconfig\n{}"),
               InvariantViolation);
  EXPECT_THROW(decodeManifest("dtncache-sweep-manifest 1\nbogus-key 1\nconfig\n{}"),
               InvariantViolation);
  EXPECT_THROW(
      decodeManifest("dtncache-sweep-manifest 1\nschemes NotAScheme\nconfig\n{}"),
      InvariantViolation);
  // A manifest that never reaches its config section is torn, not empty.
  const auto configAt = good.find("config\n");
  ASSERT_NE(configAt, std::string::npos);
  EXPECT_THROW(decodeManifest(good.substr(0, configAt)), InvariantViolation);
}

TEST(WorkUnits, MirrorExpandedJobs) {
  const SweepManifest manifest = sampleManifest();
  const auto jobs = expandGrid(manifest.grid);
  const auto units = workUnits(jobs);
  ASSERT_EQ(units.size(), jobs.size());
  ASSERT_EQ(units.size(), 2u * 2u * 3u);  // axis x schemes x seeds
  for (std::size_t i = 0; i < units.size(); ++i) {
    EXPECT_EQ(units[i].index, i);
    EXPECT_EQ(units[i].seed, jobs[i].config.seed);
    EXPECT_EQ(units[i].configFp, configFingerprintU64(jobs[i].config));
  }
}

TEST(WorkUnits, ConfigFingerprintTracksOverrides) {
  const SweepManifest manifest = sampleManifest();
  const auto units = workUnits(expandGrid(manifest.grid));
  // Jobs 0 and 6 differ only in the axis override; their configs must not
  // collide, or a lease could silently run the wrong experiment.
  EXPECT_NE(units[0].configFp, units[6].configFp);
}

}  // namespace
}  // namespace dtncache::sweep
