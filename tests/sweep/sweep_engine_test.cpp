#include "sweep/sweep_engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "runner/replicate.hpp"
#include "sweep/result_sink.hpp"

namespace dtncache::sweep {
namespace {

/// Small, fast experiment: 15 nodes, 3 days, dense contacts.
runner::ExperimentConfig tinyConfig() {
  runner::ExperimentConfig cfg;
  cfg.trace = trace::homogeneousConfig(15, 6.0, sim::days(3), 9);
  cfg.catalog.itemCount = 3;
  cfg.catalog.refreshPeriod = sim::hours(12);
  cfg.workload.queriesPerNodePerDay = 2.0;
  cfg.cache.cachingNodesPerItem = 5;
  cfg.estimatorWarmup = sim::days(1);
  return cfg;
}

TEST(ExpandGrid, DefaultGridIsOneJob) {
  SweepGrid grid;
  grid.base = tinyConfig();
  const auto jobs = expandGrid(grid);
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].index, 0u);
  EXPECT_EQ(jobs[0].config.seed, grid.base.seed);
  EXPECT_TRUE(jobs[0].overrides.empty());
}

TEST(ExpandGrid, AxesOuterSchemesThenSeedsInner) {
  SweepGrid grid;
  grid.base = tinyConfig();
  grid.schemes = {runner::SchemeKind::kEpidemic, runner::SchemeKind::kSourceDirect};
  grid.seeds = {1, 2};
  grid.axes = {{"catalog.itemCount", {"3", "5"}}};
  const auto jobs = expandGrid(grid);
  ASSERT_EQ(jobs.size(), 8u);

  // Axis outermost, scheme next, seed innermost.
  EXPECT_EQ(jobs[0].config.catalog.itemCount, 3u);
  EXPECT_EQ(jobs[0].config.scheme, runner::SchemeKind::kEpidemic);
  EXPECT_EQ(jobs[0].config.seed, 1u);
  EXPECT_EQ(jobs[1].config.seed, 2u);
  EXPECT_EQ(jobs[2].config.scheme, runner::SchemeKind::kSourceDirect);
  EXPECT_EQ(jobs[4].config.catalog.itemCount, 5u);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    ASSERT_EQ(jobs[i].overrides.size(), 1u);
    EXPECT_EQ(jobs[i].overrides[0].first, "catalog.itemCount");
  }
  EXPECT_EQ(jobs[0].overrides[0].second, "3");
  EXPECT_EQ(jobs[7].overrides[0].second, "5");
}

TEST(ExpandGrid, TwoAxesLastAxisFastest) {
  SweepGrid grid;
  grid.base = tinyConfig();
  grid.axes = {{"catalog.itemCount", {"2", "4"}},
               {"cache.cachingNodesPerItem", {"3", "6"}}};
  const auto jobs = expandGrid(grid);
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].config.catalog.itemCount, 2u);
  EXPECT_EQ(jobs[0].config.cache.cachingNodesPerItem, 3u);
  EXPECT_EQ(jobs[1].config.cache.cachingNodesPerItem, 6u);
  EXPECT_EQ(jobs[2].config.catalog.itemCount, 4u);
  EXPECT_EQ(jobs[3].config.cache.cachingNodesPerItem, 6u);
}

TEST(ExpandGrid, UnknownAxisKeyThrowsBeforeAnythingRuns) {
  SweepGrid grid;
  grid.base = tinyConfig();
  grid.axes = {{"catalog.itemCuont", {"3"}}};  // typo
  EXPECT_THROW(expandGrid(grid), InvariantViolation);
}

TEST(ExpandGrid, EmptyAxisIsRejected) {
  SweepGrid grid;
  grid.base = tinyConfig();
  grid.axes = {{"catalog.itemCount", {}}};
  EXPECT_THROW(expandGrid(grid), InvariantViolation);
}

TEST(JsonScalarTest, NumbersAndBooleansPassThroughStringsQuoted) {
  EXPECT_EQ(jsonScalar("3"), "3");
  EXPECT_EQ(jsonScalar("-0.5e3"), "-0.5e3");
  EXPECT_EQ(jsonScalar("true"), "true");
  EXPECT_EQ(jsonScalar("false"), "false");
  EXPECT_EQ(jsonScalar("epidemic"), "\"epidemic\"");
  EXPECT_EQ(jsonScalar("we\"ird"), "\"we\\\"ird\"");
}

TEST(Fingerprint, IdentifiesConfigsNotRuns) {
  auto a = tinyConfig();
  auto b = tinyConfig();
  EXPECT_EQ(configFingerprint(a), configFingerprint(b));
  b.seed += 1;
  EXPECT_NE(configFingerprint(a), configFingerprint(b));
  EXPECT_EQ(configFingerprint(a).size(), 16u);
}

/// The tentpole guarantee: a 2-scheme × 4-seed sweep produces byte-identical
/// JSONL at jobs=1 and jobs=4 (wall-clock fields suppressed — they are the
/// one intentionally nondeterministic part of a record).
TEST(SweepEngine, JsonlIsByteIdenticalAcrossJobCounts) {
  SweepGrid grid;
  grid.base = tinyConfig();
  grid.schemes = {runner::SchemeKind::kEpidemic, runner::SchemeKind::kSourceDirect};
  grid.seeds = {1, 2, 3, 4};

  const auto runAt = [&grid](std::size_t jobs) {
    std::ostringstream jsonl;
    JsonlSink sink(jsonl, /*wallClock=*/false);
    SweepEngine engine(SweepOptions{jobs, /*progress=*/false});
    engine.run(grid, {&sink});
    return jsonl.str();
  };

  const std::string serial = runAt(1);
  const std::string parallel = runAt(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(std::count(serial.begin(), serial.end(), '\n'), 8);
  EXPECT_EQ(serial, parallel);
}

TEST(SweepEngine, ResultsArriveInJobIndexOrderWithOutputs) {
  SweepGrid grid;
  grid.base = tinyConfig();
  grid.seeds = {1, 2, 3};
  SweepEngine engine(SweepOptions{3, false});
  const auto results = engine.run(grid);
  ASSERT_EQ(results.size(), 3u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].job.index, i);
    EXPECT_EQ(results[i].job.config.seed, i + 1);
    EXPECT_GT(results[i].output.results.meanFreshFraction, 0.0);
    EXPECT_GE(results[i].wallSeconds, 0.0);
  }
}

TEST(CsvSinkTest, NoNanCellsEvenWithZeroQueries) {
  SweepGrid grid;
  grid.base = tinyConfig();
  grid.base.workload.queriesPerNodePerDay = 0.0;  // every query ratio is 0/0
  std::ostringstream csv;
  CsvSink sink(csv);
  SweepEngine engine(SweepOptions{1, false});
  engine.run(grid, {&sink});
  const std::string text = csv.str();
  EXPECT_NE(text.find("valid_ratio"), std::string::npos);
  // Check whole cells, not substrings: column names may legitimately
  // contain "nan" (ctr.core.maintenance.runs).
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    std::istringstream cells(line);
    std::string cell;
    while (std::getline(cells, cell, ',')) {
      EXPECT_NE(cell, "nan") << line;
      EXPECT_NE(cell, "-nan") << line;
      EXPECT_NE(cell, "inf") << line;
      EXPECT_NE(cell, "-inf") << line;
    }
  }
}

TEST(ReplicateOnEngine, MatchesAnyJobsCount) {
  auto cfg = tinyConfig();
  cfg.scheme = runner::SchemeKind::kEpidemic;
  const auto serial = runner::runReplicated(cfg, 3, 1);
  const auto parallel = runner::runReplicated(cfg, 3, 3);
  EXPECT_EQ(serial.runs, parallel.runs);
  EXPECT_DOUBLE_EQ(serial.meanFresh.mean(), parallel.meanFresh.mean());
  EXPECT_DOUBLE_EQ(serial.meanFresh.stddev(), parallel.meanFresh.stddev());
  EXPECT_DOUBLE_EQ(serial.refreshMegabytes.mean(), parallel.refreshMegabytes.mean());
  EXPECT_EQ(serial.last.results.queries.issued, parallel.last.results.queries.issued);
}

}  // namespace
}  // namespace dtncache::sweep
