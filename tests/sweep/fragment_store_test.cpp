#include "sweep/fragment_store.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "sim/assert.hpp"
#include "sweep/distributed.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/work_unit.hpp"
#include "trace/generators.hpp"

namespace dtncache::sweep {
namespace {

std::string tempStore(const std::string& name) {
  // TempDir() outlives a ctest invocation; start from a clean slate so a
  // stale lease or fragment from a previous run cannot leak in.
  const std::string dir = std::string(::testing::TempDir()) + "dtncache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

Fragment sampleFragment(std::uint64_t index = 3) {
  Fragment fragment;
  fragment.jobIndex = index;
  fragment.sweepFp = 0x1122334455667788ull;
  fragment.configFp = 0x99aabbccddeeff00ull;
  fragment.jsonl = "{\"job\": " + std::to_string(index) + "}\n";
  fragment.csvHeader = "job,metric\n";
  fragment.csvRow = std::to_string(index) + ",0.5\n";
  fragment.trace = "{\"kind\": \"job_start\"}\n";
  return fragment;
}

TEST(FragmentCodec, RoundTrips) {
  const Fragment fragment = sampleFragment();
  const auto bytes = encodeFragment(fragment);
  Fragment decoded;
  ASSERT_TRUE(decodeFragment(bytes.data(), bytes.size(), &decoded));
  EXPECT_EQ(decoded.jobIndex, fragment.jobIndex);
  EXPECT_EQ(decoded.sweepFp, fragment.sweepFp);
  EXPECT_EQ(decoded.configFp, fragment.configFp);
  EXPECT_EQ(decoded.jsonl, fragment.jsonl);
  EXPECT_EQ(decoded.csvHeader, fragment.csvHeader);
  EXPECT_EQ(decoded.csvRow, fragment.csvRow);
  EXPECT_EQ(decoded.trace, fragment.trace);
  // Deterministic serialization backs the content-addressed file names.
  EXPECT_EQ(encodeFragment(decoded), bytes);
}

TEST(FragmentCodec, RejectsEveryTruncation) {
  const auto bytes = encodeFragment(sampleFragment());
  Fragment decoded;
  for (std::size_t cut = 0; cut < bytes.size(); ++cut)
    EXPECT_FALSE(decodeFragment(bytes.data(), cut, &decoded)) << "cut=" << cut;
}

TEST(FragmentCodec, RejectsBitFlipsInGuardedBytes) {
  // The CRC guards bodyLen | bodyCrc | body (bytes 32..end); magic and
  // version guard bytes 0..4. Identity fields (jobIndex, sweepFp, configFp)
  // are instead cross-checked by scan (foreign sweep) and merge (config
  // fingerprint), so a flip there is caught one layer up, not here.
  const auto bytes = encodeFragment(sampleFragment());
  std::vector<std::size_t> guarded;
  for (std::size_t i = 0; i < 5; ++i) guarded.push_back(i);
  for (std::size_t i = 32; i < bytes.size(); ++i) guarded.push_back(i);
  for (const std::size_t i : guarded) {
    for (int bit = 0; bit < 8; bit += 3) {
      auto corrupt = bytes;
      corrupt[i] ^= static_cast<std::uint8_t>(1u << bit);
      Fragment decoded;
      EXPECT_FALSE(decodeFragment(corrupt.data(), corrupt.size(), &decoded))
          << "byte=" << i << " bit=" << bit;
    }
  }
}

TEST(FragmentStoreTest, PutScanRead) {
  FragmentStore store(tempStore("put_scan"));
  const Fragment a = sampleFragment(0);
  const Fragment b = sampleFragment(1);
  store.put(a);
  const std::string pathB = store.put(b);

  const auto scanned = store.scan(a.sweepFp, /*dropInvalid=*/false);
  EXPECT_EQ(scanned.invalid, 0u);
  ASSERT_EQ(scanned.valid.size(), 2u);
  ASSERT_TRUE(scanned.valid.count(1));
  EXPECT_EQ(scanned.valid.at(1), pathB);

  const auto readBack = store.read(pathB);
  ASSERT_TRUE(readBack.has_value());
  EXPECT_EQ(readBack->jsonl, b.jsonl);

  // A different sweep sees these fragments as foreign.
  const auto foreign = store.scan(a.sweepFp + 1, /*dropInvalid=*/false);
  EXPECT_TRUE(foreign.valid.empty());
  EXPECT_EQ(foreign.invalid, 2u);
}

TEST(FragmentStoreTest, ScanDropsTornAndFlippedFragments) {
  FragmentStore store(tempStore("scan_drop"));
  const Fragment good = sampleFragment(0);
  store.put(good);

  // A torn write of job 1 (header promises more bytes than exist) and a
  // bit-flipped copy of job 2, dropped under the final .frag name the way a
  // kill -9 mid-rename cannot produce but a dying disk can.
  const auto bytes1 = encodeFragment(sampleFragment(1));
  auto bytes2 = encodeFragment(sampleFragment(2));
  bytes2[bytes2.size() - 3] ^= 0x10;
  const std::string dir = store.dir() + "/frags";
  std::ofstream(dir + "/job-0000000001-deadbeef.frag", std::ios::binary)
      .write(reinterpret_cast<const char*>(bytes1.data()),
             static_cast<long>(bytes1.size() / 2));
  std::ofstream(dir + "/job-0000000002-deadbeef.frag", std::ios::binary)
      .write(reinterpret_cast<const char*>(bytes2.data()),
             static_cast<long>(bytes2.size()));

  const auto scanned = store.scan(good.sweepFp, /*dropInvalid=*/true);
  EXPECT_EQ(scanned.invalid, 2u);
  ASSERT_EQ(scanned.valid.size(), 1u);
  EXPECT_TRUE(scanned.valid.count(0));

  // dropInvalid unlinked the corrupt files: a second scan is clean.
  const auto rescanned = store.scan(good.sweepFp, /*dropInvalid=*/false);
  EXPECT_EQ(rescanned.invalid, 0u);
  EXPECT_EQ(rescanned.valid.size(), 1u);
}

TEST(FragmentStoreTest, PutBytesValidatesSweep) {
  FragmentStore store(tempStore("put_bytes"));
  const Fragment fragment = sampleFragment();
  const auto bytes = encodeFragment(fragment);

  EXPECT_FALSE(store.putBytes(bytes, fragment.sweepFp + 1));  // foreign sweep
  auto corrupt = bytes;
  corrupt.back() ^= 1;
  EXPECT_FALSE(store.putBytes(corrupt, fragment.sweepFp));

  Fragment decoded;
  ASSERT_TRUE(store.putBytes(bytes, fragment.sweepFp, &decoded));
  EXPECT_EQ(decoded.jobIndex, fragment.jobIndex);
  EXPECT_EQ(store.scan(fragment.sweepFp, false).valid.size(), 1u);
}

TEST(FragmentStoreTest, LeasesAreExclusive) {
  FragmentStore store(tempStore("leases"));
  EXPECT_FALSE(store.leaseAge(5).has_value());
  EXPECT_TRUE(store.tryLease(5));
  EXPECT_FALSE(store.tryLease(5));  // held
  ASSERT_TRUE(store.leaseAge(5).has_value());
  EXPECT_GE(*store.leaseAge(5), 0.0);
  store.releaseLease(5);
  EXPECT_FALSE(store.leaseAge(5).has_value());
  EXPECT_TRUE(store.tryLease(5));  // reacquirable after release
}

/// The core byte-identity property at the unit level: fragments produced by
/// runWorkUnitFragment and merged in job-index order reproduce the engine's
/// sink streams exactly.
TEST(MergeFragments, ByteIdenticalToEngineSinks) {
  SweepManifest manifest;
  manifest.grid.base.trace = trace::homogeneousConfig(12, 6.0, sim::days(1), 9);
  manifest.grid.base.catalog.itemCount = 2;
  manifest.grid.base.catalog.refreshPeriod = sim::hours(12);
  manifest.grid.base.workload.queriesPerNodePerDay = 2.0;
  manifest.grid.base.cache.cachingNodesPerItem = 4;
  manifest.grid.schemes = {runner::SchemeKind::kHierarchical,
                           runner::SchemeKind::kEpidemic};
  manifest.grid.seeds = {3, 4};
  manifest.wallClock = false;  // the only nondeterministic columns
  manifest.traceEnabled = true;
  const std::uint64_t sweepFp = sweepFingerprint(encodeManifest(manifest));

  // Reference: the in-process engine with its sinks.
  std::ostringstream refJsonl, refCsv, refTrace;
  JsonlSink jsonlSink(refJsonl, /*wallClock=*/false);
  CsvSink csvSink(refCsv, /*wallClock=*/false);
  SweepOptions options;
  options.jobs = 2;
  options.traceOut = &refTrace;
  SweepEngine engine(options);
  engine.run(manifest.grid, {&jsonlSink, &csvSink});

  // Distributed path: each job to a fragment, merged from the store.
  FragmentStore store(tempStore("merge_equal"));
  const auto jobs = expandGrid(manifest.grid);
  const auto units = workUnits(jobs);
  for (auto it = jobs.rbegin(); it != jobs.rend(); ++it)  // any completion order
    store.put(runWorkUnitFragment(manifest, sweepFp, *it));

  std::ostringstream jsonl, csv, traceOut;
  mergeFragments(store, sweepFp, units, &jsonl, &csv, &traceOut);
  EXPECT_EQ(jsonl.str(), refJsonl.str());
  EXPECT_EQ(csv.str(), refCsv.str());
  EXPECT_EQ(traceOut.str(), refTrace.str());
}

TEST(MergeFragments, MissingFragmentThrows) {
  SweepManifest manifest;
  manifest.grid.base.trace = trace::homogeneousConfig(10, 6.0, sim::days(1), 9);
  manifest.grid.base.catalog.itemCount = 2;
  manifest.grid.seeds = {1, 2, 3};
  manifest.wallClock = false;
  const std::uint64_t sweepFp = sweepFingerprint(encodeManifest(manifest));

  FragmentStore store(tempStore("merge_missing"));
  const auto jobs = expandGrid(manifest.grid);
  const auto units = workUnits(jobs);
  for (const auto& job : jobs)
    if (job.index != 1) store.put(runWorkUnitFragment(manifest, sweepFp, job));

  std::ostringstream jsonl;
  EXPECT_THROW(mergeFragments(store, sweepFp, units, &jsonl, nullptr, nullptr),
               InvariantViolation);
}

}  // namespace
}  // namespace dtncache::sweep
