#include "sweep/distributed.hpp"

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <random>
#include <sstream>
#include <thread>

#include "sim/assert.hpp"
#include "sweep/result_sink.hpp"
#include "trace/generators.hpp"

namespace dtncache::sweep {
namespace {

std::string tempStore(const std::string& name) {
  // TempDir() outlives a ctest invocation; start from a clean slate so a
  // stale lease or fragment from a previous run cannot leak in.
  const std::string dir = std::string(::testing::TempDir()) + "dtncache_" + name;
  std::filesystem::remove_all(dir);
  return dir;
}

SweepManifest tinyManifest() {
  SweepManifest manifest;
  manifest.grid.base.trace = trace::homogeneousConfig(12, 6.0, sim::days(1), 9);
  manifest.grid.base.catalog.itemCount = 2;
  manifest.grid.base.catalog.refreshPeriod = sim::hours(12);
  manifest.grid.base.workload.queriesPerNodePerDay = 2.0;
  manifest.grid.base.cache.cachingNodesPerItem = 4;
  manifest.grid.schemes = {runner::SchemeKind::kHierarchical,
                           runner::SchemeKind::kEpidemic};
  manifest.grid.seeds = {3, 4};
  manifest.wallClock = false;
  manifest.traceEnabled = true;
  return manifest;
}

/// Engine reference streams for a manifest: what any distributed run of the
/// same grid must reproduce byte for byte.
struct Reference {
  std::string jsonl;
  std::string csv;
  std::string trace;
};

Reference engineReference(const SweepManifest& manifest) {
  std::ostringstream jsonl, csv, traceOut;
  JsonlSink jsonlSink(jsonl, manifest.wallClock);
  CsvSink csvSink(csv, manifest.wallClock);
  SweepOptions options;
  options.jobs = 2;
  if (manifest.traceEnabled) options.traceOut = &traceOut;
  options.traceFilter = manifest.traceFilter;
  SweepEngine engine(options);
  engine.run(manifest.grid, {&jsonlSink, &csvSink});
  return {jsonl.str(), csv.str(), traceOut.str()};
}

Reference mergedStore(const std::string& storeDir, const SweepManifest& manifest) {
  const FragmentStore store(storeDir);
  const std::uint64_t sweepFp = sweepFingerprint(encodeManifest(manifest));
  const auto units = workUnits(expandGrid(manifest.grid));
  std::ostringstream jsonl, csv, traceOut;
  mergeFragments(store, sweepFp, units, &jsonl, &csv, &traceOut);
  return {jsonl.str(), csv.str(), traceOut.str()};
}

// ---- wire codec -------------------------------------------------------------

TEST(SweepWire, AllFrameTypesRoundTrip) {
  WireHelloAck ack;
  ack.ok = 1;
  ack.sweepFp = 0xfeedface12345678ull;
  ack.jobsTotal = 42;
  ack.manifest = "dtncache-sweep-manifest 1\nconfig\n{}";
  WireResult result;
  result.fragment = {0x01, 0x02, 0xff, 0x00, 0x7f};

  const std::vector<SweepFrame> frames = {
      WireHello{0xabcdull}, ack,
      WireLeaseRequest{},   WireLeaseGrant{WorkUnit{7, 0x1111ull, 99}},
      WireNoWork{1, 250},   result,
      WireResultAck{7, 1},  WireBye{}};
  for (const auto& frame : frames) {
    const auto bytes = encodeSweepFrame(frame);
    const auto decoded = decodeSweepFrame(bytes.data(), bytes.size());
    ASSERT_EQ(decoded.status, SweepDecodeStatus::kFrame);
    EXPECT_EQ(decoded.consumed, bytes.size());
    ASSERT_TRUE(decoded.frame.has_value());
    EXPECT_EQ(sweepFrameTypeOf(*decoded.frame), sweepFrameTypeOf(frame));
  }

  // Spot-check payload fidelity on the data-bearing frames.
  const auto ackBytes = encodeSweepFrame(ack);
  const auto ackBack = decodeSweepFrame(ackBytes.data(), ackBytes.size());
  const auto& ackDecoded = std::get<WireHelloAck>(*ackBack.frame);
  EXPECT_EQ(ackDecoded.sweepFp, ack.sweepFp);
  EXPECT_EQ(ackDecoded.jobsTotal, ack.jobsTotal);
  EXPECT_EQ(ackDecoded.manifest, ack.manifest);
  const auto resultBytes = encodeSweepFrame(result);
  const auto resultBack = decodeSweepFrame(resultBytes.data(), resultBytes.size());
  EXPECT_EQ(std::get<WireResult>(*resultBack.frame).fragment, result.fragment);
}

TEST(SweepWire, PartialFramesNeedMore) {
  const auto bytes = encodeSweepFrame(WireLeaseGrant{WorkUnit{1, 2, 3}});
  for (std::size_t cut = 0; cut < bytes.size(); ++cut)
    EXPECT_EQ(decodeSweepFrame(bytes.data(), cut).status,
              SweepDecodeStatus::kNeedMore)
        << "cut=" << cut;
}

TEST(SweepWire, RejectsCorruptHeaders) {
  auto bytes = encodeSweepFrame(WireHello{1});
  bytes[0] ^= 0xff;  // magic
  EXPECT_EQ(decodeSweepFrame(bytes.data(), bytes.size()).status,
            SweepDecodeStatus::kReject);

  bytes = encodeSweepFrame(WireHello{1});
  bytes[4] = 99;  // version
  EXPECT_EQ(decodeSweepFrame(bytes.data(), bytes.size()).status,
            SweepDecodeStatus::kReject);

  bytes = encodeSweepFrame(WireHello{1});
  bytes[5] = 200;  // unknown type
  EXPECT_EQ(decodeSweepFrame(bytes.data(), bytes.size()).status,
            SweepDecodeStatus::kReject);

  bytes = encodeSweepFrame(WireBye{});
  bytes[8] = 3;  // bye with payload length but no payload bytes follow
  EXPECT_EQ(decodeSweepFrame(bytes.data(), bytes.size()).status,
            SweepDecodeStatus::kNeedMore);
}

TEST(SweepWire, FuzzNeverMisbehaves) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 2000; ++round) {
    std::vector<std::uint8_t> bytes(rng() % 64);
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng());
    if (round % 3 == 0 && bytes.size() >= 6) {
      // Bias toward plausible headers so payload parsing is exercised too.
      bytes[0] = 0x44; bytes[1] = 0x54; bytes[2] = 0x4e; bytes[3] = 0x57;
      bytes[4] = kSweepWireVersion;
      bytes[5] = static_cast<std::uint8_t>(1 + rng() % 8);
    }
    const auto decoded = decodeSweepFrame(bytes.data(), bytes.size());
    if (decoded.status == SweepDecodeStatus::kFrame) {
      EXPECT_LE(decoded.consumed, bytes.size());
      EXPECT_TRUE(decoded.frame.has_value());
    }
  }
}

// ---- coordinator + workers --------------------------------------------------

TEST(Distributed, CoordinatorTwoWorkersByteIdenticalToEngine) {
  const SweepManifest manifest = tinyManifest();
  const Reference reference = engineReference(manifest);
  const std::string storeDir = tempStore("coord_two");

  CoordinatorOptions coordinatorOptions;
  coordinatorOptions.storeDir = storeDir;
  coordinatorOptions.quiet = true;
  CoordinatorReport coordinatorReport;
  std::thread coordinator([&] {
    coordinatorReport = runCoordinator(manifest, coordinatorOptions);
  });

  // The port file is written before the loop serves, so polling it is a
  // race-free rendezvous.
  const FragmentStore store(storeDir);
  std::optional<std::string> portText;
  for (int i = 0; i < 200 && !portText.has_value(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    portText = store.readFile("coordinator.port");
  }
  ASSERT_TRUE(portText.has_value()) << "coordinator never published its port";
  WorkerOptions workerOptions;
  workerOptions.port = static_cast<std::uint16_t>(std::stoul(*portText));
  workerOptions.quiet = true;

  WorkerReport w1, w2;
  std::thread workerA([&] { w1 = runWorkerClient(workerOptions); });
  std::thread workerB([&] { w2 = runWorkerClient(workerOptions); });
  workerA.join();
  workerB.join();
  coordinator.join();

  EXPECT_EQ(coordinatorReport.jobsTotal, 4u);
  EXPECT_EQ(coordinatorReport.completed, 4u);
  EXPECT_EQ(w1.completed + w2.completed, 4u);

  const Reference merged = mergedStore(storeDir, manifest);
  EXPECT_EQ(merged.jsonl, reference.jsonl);
  EXPECT_EQ(merged.csv, reference.csv);
  EXPECT_EQ(merged.trace, reference.trace);
}

TEST(Distributed, ResumeRequiresFlagAndSkipsCompleted) {
  const SweepManifest manifest = tinyManifest();
  const std::uint64_t sweepFp = sweepFingerprint(encodeManifest(manifest));
  const std::string storeDir = tempStore("resume_skip");
  const FragmentStore store(storeDir);
  const auto jobs = expandGrid(manifest.grid);
  for (const auto& job : jobs) store.put(runWorkUnitFragment(manifest, sweepFp, job));

  CoordinatorOptions options;
  options.storeDir = storeDir;
  options.quiet = true;
  EXPECT_THROW(runCoordinator(manifest, options), InvariantViolation);

  options.resume = true;
  const auto report = runCoordinator(manifest, options);
  EXPECT_EQ(report.resumed, jobs.size());
  EXPECT_EQ(report.completed, 0u);  // nothing left to serve
}

TEST(Distributed, ResumeRequeuesCorruptFragments) {
  const SweepManifest manifest = tinyManifest();
  const Reference reference = engineReference(manifest);
  const std::uint64_t sweepFp = sweepFingerprint(encodeManifest(manifest));
  const std::string storeDir = tempStore("resume_corrupt");
  {
    const FragmentStore store(storeDir);
    const auto jobs = expandGrid(manifest.grid);
    for (const auto& job : jobs) {
      if (job.index == 2) {
        // Bank a bit-flipped fragment for job 2: resume must drop and re-run.
        auto bytes = encodeFragment(runWorkUnitFragment(manifest, sweepFp, job));
        bytes[bytes.size() - 1] ^= 0x40;
        std::ofstream out(storeDir + "/frags/job-0000000002-00000bad.frag",
                          std::ios::binary);
        out.write(reinterpret_cast<const char*>(bytes.data()),
                  static_cast<long>(bytes.size()));
      } else {
        store.put(runWorkUnitFragment(manifest, sweepFp, job));
      }
    }
  }

  CoordinatorOptions coordinatorOptions;
  coordinatorOptions.storeDir = storeDir;
  coordinatorOptions.resume = true;
  coordinatorOptions.quiet = true;
  CoordinatorReport coordinatorReport;
  std::thread coordinator([&] {
    coordinatorReport = runCoordinator(manifest, coordinatorOptions);
  });
  const FragmentStore store(storeDir);
  std::optional<std::string> portText;
  for (int i = 0; i < 200 && !portText.has_value(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    portText = store.readFile("coordinator.port");
  }
  ASSERT_TRUE(portText.has_value());
  WorkerOptions workerOptions;
  workerOptions.port = static_cast<std::uint16_t>(std::stoul(*portText));
  workerOptions.quiet = true;
  const auto workerReport = runWorkerClient(workerOptions);
  coordinator.join();

  EXPECT_EQ(coordinatorReport.invalidDropped, 1u);
  EXPECT_EQ(coordinatorReport.resumed, 3u);
  EXPECT_EQ(coordinatorReport.completed, 1u);
  EXPECT_EQ(workerReport.completed, 1u);

  const Reference merged = mergedStore(storeDir, manifest);
  EXPECT_EQ(merged.jsonl, reference.jsonl);
  EXPECT_EQ(merged.csv, reference.csv);
  EXPECT_EQ(merged.trace, reference.trace);
}

// ---- duplicate-result idempotence -------------------------------------------

/// Minimal blocking protocol client, so the test can violate the normal
/// worker discipline (send the same result twice).
class RawClient {
 public:
  bool connectTo(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    return ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0;
  }
  ~RawClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  bool send(const SweepFrame& frame) {
    const auto bytes = encodeSweepFrame(frame);
    std::size_t done = 0;
    while (done < bytes.size()) {
      const ssize_t n = ::write(fd_, bytes.data() + done, bytes.size() - done);
      if (n <= 0) return false;
      done += static_cast<std::size_t>(n);
    }
    return true;
  }
  std::optional<SweepFrame> recv() {
    for (;;) {
      const auto decoded = decodeSweepFrame(in_.data(), in_.size());
      if (decoded.status == SweepDecodeStatus::kFrame) {
        in_.erase(in_.begin(), in_.begin() + static_cast<long>(decoded.consumed));
        return decoded.frame;
      }
      if (decoded.status == SweepDecodeStatus::kReject) return std::nullopt;
      std::uint8_t buf[4096];
      const ssize_t n = ::read(fd_, buf, sizeof buf);
      if (n <= 0) return std::nullopt;
      in_.insert(in_.end(), buf, buf + n);
    }
  }

 private:
  int fd_ = -1;
  std::vector<std::uint8_t> in_;
};

TEST(Distributed, DuplicateResultIsAckedAndDiscarded) {
  SweepManifest manifest = tinyManifest();
  manifest.grid.schemes = {runner::SchemeKind::kHierarchical};
  manifest.grid.seeds = {3, 4};  // two jobs
  const std::uint64_t sweepFp = sweepFingerprint(encodeManifest(manifest));
  const std::string storeDir = tempStore("dup_ack");

  CoordinatorOptions coordinatorOptions;
  coordinatorOptions.storeDir = storeDir;
  coordinatorOptions.quiet = true;
  CoordinatorReport coordinatorReport;
  std::thread coordinator([&] {
    coordinatorReport = runCoordinator(manifest, coordinatorOptions);
  });
  const FragmentStore store(storeDir);
  std::optional<std::string> portText;
  for (int i = 0; i < 200 && !portText.has_value(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(25));
    portText = store.readFile("coordinator.port");
  }
  ASSERT_TRUE(portText.has_value());
  const auto port = static_cast<std::uint16_t>(std::stoul(*portText));

  const auto jobs = expandGrid(manifest.grid);
  RawClient client;
  ASSERT_TRUE(client.connectTo(port));
  ASSERT_TRUE(client.send(WireHello{sweepFp}));
  const auto helloAck = client.recv();
  ASSERT_TRUE(helloAck.has_value());
  ASSERT_NE(std::get_if<WireHelloAck>(&*helloAck), nullptr);

  // Lease job 0 and complete it twice. The second result must come back
  // acked as a duplicate, not tear the store or double-count.
  ASSERT_TRUE(client.send(WireLeaseRequest{}));
  const auto lease = client.recv();
  ASSERT_TRUE(lease.has_value());
  const auto* grant = std::get_if<WireLeaseGrant>(&*lease);
  ASSERT_NE(grant, nullptr);
  const auto fragment =
      encodeFragment(runWorkUnitFragment(manifest, sweepFp, jobs[grant->unit.index]));
  for (int attempt = 0; attempt < 2; ++attempt) {
    ASSERT_TRUE(client.send(WireResult{fragment}));
    const auto ack = client.recv();
    ASSERT_TRUE(ack.has_value());
    const auto* resultAck = std::get_if<WireResultAck>(&*ack);
    ASSERT_NE(resultAck, nullptr);
    EXPECT_EQ(resultAck->index, grant->unit.index);
    EXPECT_EQ(resultAck->duplicate, attempt == 0 ? 0 : 1);
  }

  // Finish the sweep cleanly with a normal worker.
  WorkerOptions workerOptions;
  workerOptions.port = port;
  workerOptions.quiet = true;
  runWorkerClient(workerOptions);
  client.send(WireBye{});
  coordinator.join();

  EXPECT_EQ(coordinatorReport.completed, jobs.size());
  EXPECT_EQ(coordinatorReport.duplicates, 1u);
  // Exactly one valid fragment per job survived the duplicate.
  EXPECT_EQ(store.scan(sweepFp, false).valid.size(), jobs.size());
}

// ---- spool mode: randomized kill-and-resume ---------------------------------

TEST(Distributed, SpoolKillAndResumeLosesNothing) {
  const SweepManifest manifest = tinyManifest();
  const Reference reference = engineReference(manifest);
  const std::string storeDir = tempStore("spool_kill");
  const std::size_t jobCount = spoolInit(manifest, storeDir);
  ASSERT_EQ(jobCount, 4u);

  // Crash-loop: every worker dies (holding a lease, mid-"write") after a
  // random number of completions; the next worker breaks the stale lease
  // and carries on. leaseTimeout 0 treats any existing lease as stale,
  // which is exactly the semantics of "that process is dead".
  std::mt19937_64 rng(11);
  SpoolReport report;
  int spawned = 0;
  while (!report.allDone) {
    ASSERT_LT(++spawned, 64) << "spool crash-loop failed to converge";
    SpoolWorkerOptions options;
    options.storeDir = storeDir;
    options.quiet = true;
    options.leaseTimeout = 0.0;
    options.crashAfter = 1 + rng() % 2;
    report = runSpoolWorker(options);
  }

  const Reference merged = mergedStore(storeDir, manifest);
  EXPECT_EQ(merged.jsonl, reference.jsonl);
  EXPECT_EQ(merged.csv, reference.csv);
  EXPECT_EQ(merged.trace, reference.trace);
  // No duplicated rows: line count equals the job count exactly.
  EXPECT_EQ(static_cast<std::size_t>(
                std::count(merged.jsonl.begin(), merged.jsonl.end(), '\n')),
            jobCount);
}

TEST(Distributed, SpoolWorkersRunConcurrently) {
  const SweepManifest manifest = tinyManifest();
  const Reference reference = engineReference(manifest);
  const std::string storeDir = tempStore("spool_pair");
  spoolInit(manifest, storeDir);

  SpoolWorkerOptions options;
  options.storeDir = storeDir;
  options.quiet = true;
  SpoolReport r1, r2;
  std::thread a([&] { r1 = runSpoolWorker(options); });
  std::thread b([&] { r2 = runSpoolWorker(options); });
  a.join();
  b.join();
  EXPECT_TRUE(r1.allDone);
  EXPECT_TRUE(r2.allDone);
  EXPECT_EQ(r1.completed + r2.completed, 4u);

  const Reference merged = mergedStore(storeDir, manifest);
  EXPECT_EQ(merged.jsonl, reference.jsonl);
  EXPECT_EQ(merged.csv, reference.csv);
  EXPECT_EQ(merged.trace, reference.trace);
}

}  // namespace
}  // namespace dtncache::sweep
