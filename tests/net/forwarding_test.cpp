#include "net/forwarding.hpp"

#include <gtest/gtest.h>

namespace dtncache::net {
namespace {

trace::ContactRateEstimator makeEstimator() {
  trace::EstimatorConfig cfg;
  cfg.mode = trace::EstimatorMode::kCumulative;
  trace::ContactRateEstimator e(4, cfg, 0.0);
  // Node 1 meets node 3 often; node 0 rarely.
  for (int i = 0; i < 10; ++i) e.recordContact(1, 3, 10.0 * i);
  e.recordContact(0, 3, 50.0);
  return e;
}

TEST(Forwarding, DestinationIsAlwaysBetter) {
  const auto e = makeEstimator();
  EXPECT_TRUE(betterCarrier(e, 0, 3, 3, 100.0, 1.2));
}

TEST(Forwarding, CarrierAtDestinationNeverHandsOff) {
  const auto e = makeEstimator();
  EXPECT_FALSE(betterCarrier(e, 3, 1, 3, 100.0, 1.2));
}

TEST(Forwarding, HigherRateWinsWithFactor) {
  const auto e = makeEstimator();
  // rate(1,3)=0.1, rate(0,3)=0.01: 1 is a better carrier than 0 toward 3.
  EXPECT_TRUE(betterCarrier(e, 0, 1, 3, 100.0, 1.2));
  EXPECT_FALSE(betterCarrier(e, 1, 0, 3, 100.0, 1.2));
}

TEST(Forwarding, ImprovementFactorGatesMarginalGains) {
  trace::EstimatorConfig cfg;
  cfg.mode = trace::EstimatorMode::kCumulative;
  trace::ContactRateEstimator e(4, cfg, 0.0);
  for (int i = 0; i < 10; ++i) e.recordContact(0, 3, 10.0 * i);
  for (int i = 0; i < 11; ++i) e.recordContact(1, 3, 9.0 * i);
  // rate(1,3)=0.11 vs rate(0,3)=0.10: only a 10% gain.
  EXPECT_TRUE(betterCarrier(e, 0, 1, 3, 100.0, 1.0));
  EXPECT_FALSE(betterCarrier(e, 0, 1, 3, 100.0, 1.5));
}

TEST(Forwarding, ZeroUtilityCandidateRejected) {
  const auto e = makeEstimator();
  // Node 2 has never met node 3.
  EXPECT_FALSE(betterCarrier(e, 0, 2, 3, 100.0, 1.2));
}

TEST(Forwarding, SprayShareIsBinary) {
  EXPECT_EQ(sprayShare(8), 4u);
  EXPECT_EQ(sprayShare(7), 4u);  // ceil(7/2)
  EXPECT_EQ(sprayShare(2), 1u);
  EXPECT_EQ(sprayShare(1), 1u);  // single copy migrates
  EXPECT_EQ(sprayShare(0), 0u);
}

TEST(Forwarding, SprayConservesCopies) {
  for (std::uint32_t c = 1; c <= 64; ++c) {
    const std::uint32_t handed = sprayShare(c);
    EXPECT_LE(handed, c);
    EXPECT_EQ(handed + (c - handed), c);
    if (c > 1) {
      EXPECT_GT(c - handed, 0u);  // carrier keeps at least one
    }
  }
}

}  // namespace
}  // namespace dtncache::net
