#include "net/buffer.hpp"

#include <gtest/gtest.h>

namespace dtncache::net {
namespace {

Message msg(MessageId id, std::uint32_t payload = 0, sim::SimTime deadline = 0.0) {
  Message m;
  m.id = id;
  m.payloadBytes = payload;
  m.deadline = deadline;
  return m;
}

TEST(MessageBuffer, AddAndContains) {
  MessageBuffer b(1024);
  EXPECT_TRUE(b.add(msg(1), 0.0));
  EXPECT_TRUE(b.contains(1));
  EXPECT_FALSE(b.contains(2));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.usedBytes(), kHeaderBytes);
}

TEST(MessageBuffer, RejectsDuplicates) {
  MessageBuffer b(1024);
  EXPECT_TRUE(b.add(msg(1), 0.0));
  EXPECT_FALSE(b.add(msg(1), 0.0));
  EXPECT_EQ(b.size(), 1u);
}

TEST(MessageBuffer, RejectsOversized) {
  MessageBuffer b(100);
  EXPECT_FALSE(b.add(msg(1, 1000), 0.0));
  EXPECT_TRUE(b.empty());
}

TEST(MessageBuffer, DropHeadOnOverflow) {
  MessageBuffer b(3 * kHeaderBytes);
  EXPECT_TRUE(b.add(msg(1), 0.0));
  EXPECT_TRUE(b.add(msg(2), 0.0));
  EXPECT_TRUE(b.add(msg(3), 0.0));
  EXPECT_TRUE(b.add(msg(4), 0.0));  // evicts oldest (1)
  EXPECT_FALSE(b.contains(1));
  EXPECT_TRUE(b.contains(2));
  EXPECT_TRUE(b.contains(4));
  EXPECT_EQ(b.size(), 3u);
}

TEST(MessageBuffer, PurgeExpired) {
  MessageBuffer b(4096);
  b.add(msg(1, 0, 10.0), 0.0);
  b.add(msg(2, 0, 100.0), 0.0);
  b.add(msg(3, 0, 0.0), 0.0);  // deadline 0 = immortal
  b.purgeExpired(50.0);
  EXPECT_FALSE(b.contains(1));
  EXPECT_TRUE(b.contains(2));
  EXPECT_TRUE(b.contains(3));
}

TEST(MessageBuffer, AddPurgesExpiredFirst) {
  MessageBuffer b(2 * kHeaderBytes);
  b.add(msg(1, 0, 10.0), 0.0);
  b.add(msg(2, 0, 0.0), 0.0);
  // Adding after id 1's deadline should drop 1, not evict 2.
  EXPECT_TRUE(b.add(msg(3), 20.0));
  EXPECT_TRUE(b.contains(2));
  EXPECT_TRUE(b.contains(3));
}

TEST(MessageBuffer, RemoveIfKeepsAccounting) {
  MessageBuffer b(4096);
  b.add(msg(1, 100), 0.0);
  b.add(msg(2, 200), 0.0);
  b.removeIf([](const Message& m) { return m.id == 1; });
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.usedBytes(), kHeaderBytes + 200u);
}

TEST(MessageBuffer, UsedBytesTracksPayloads) {
  MessageBuffer b(1 << 20);
  b.add(msg(1, 500), 0.0);
  b.add(msg(2, 700), 0.0);
  EXPECT_EQ(b.usedBytes(), 2 * kHeaderBytes + 1200u);
}

}  // namespace
}  // namespace dtncache::net
