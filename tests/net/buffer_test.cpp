#include "net/buffer.hpp"

#include <gtest/gtest.h>

namespace dtncache::net {
namespace {

Message msg(MessageId id, std::uint32_t payload = 0, sim::SimTime deadline = 0.0) {
  Message m;
  m.id = id;
  m.payloadBytes = payload;
  m.deadline = deadline;
  return m;
}

TEST(MessageBuffer, AddAndContains) {
  MessageBuffer b(1024);
  EXPECT_TRUE(b.add(msg(1), 0.0));
  EXPECT_TRUE(b.contains(1));
  EXPECT_FALSE(b.contains(2));
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.usedBytes(), kHeaderBytes);
}

TEST(MessageBuffer, RejectsDuplicates) {
  MessageBuffer b(1024);
  EXPECT_TRUE(b.add(msg(1), 0.0));
  EXPECT_FALSE(b.add(msg(1), 0.0));
  EXPECT_EQ(b.size(), 1u);
}

TEST(MessageBuffer, RejectsOversized) {
  MessageBuffer b(100);
  EXPECT_FALSE(b.add(msg(1, 1000), 0.0));
  EXPECT_TRUE(b.empty());
}

TEST(MessageBuffer, DropHeadOnOverflow) {
  MessageBuffer b(3 * kHeaderBytes);
  EXPECT_TRUE(b.add(msg(1), 0.0));
  EXPECT_TRUE(b.add(msg(2), 0.0));
  EXPECT_TRUE(b.add(msg(3), 0.0));
  EXPECT_TRUE(b.add(msg(4), 0.0));  // evicts oldest (1)
  EXPECT_FALSE(b.contains(1));
  EXPECT_TRUE(b.contains(2));
  EXPECT_TRUE(b.contains(4));
  EXPECT_EQ(b.size(), 3u);
}

TEST(MessageBuffer, PurgeExpired) {
  MessageBuffer b(4096);
  b.add(msg(1, 0, 10.0), 0.0);
  b.add(msg(2, 0, 100.0), 0.0);
  b.add(msg(3, 0, 0.0), 0.0);  // deadline 0 = immortal
  b.purgeExpired(50.0);
  EXPECT_FALSE(b.contains(1));
  EXPECT_TRUE(b.contains(2));
  EXPECT_TRUE(b.contains(3));
}

TEST(MessageBuffer, AddPurgesExpiredFirst) {
  MessageBuffer b(2 * kHeaderBytes);
  b.add(msg(1, 0, 10.0), 0.0);
  b.add(msg(2, 0, 0.0), 0.0);
  // Adding after id 1's deadline should drop 1, not evict 2.
  EXPECT_TRUE(b.add(msg(3), 20.0));
  EXPECT_TRUE(b.contains(2));
  EXPECT_TRUE(b.contains(3));
}

TEST(MessageBuffer, RemoveIfKeepsAccounting) {
  MessageBuffer b(4096);
  b.add(msg(1, 100), 0.0);
  b.add(msg(2, 200), 0.0);
  b.removeIf([](const Message& m) { return m.id == 1; });
  EXPECT_EQ(b.size(), 1u);
  EXPECT_EQ(b.usedBytes(), kHeaderBytes + 200u);
}

TEST(MessageBuffer, UsedBytesTracksPayloads) {
  MessageBuffer b(1 << 20);
  b.add(msg(1, 500), 0.0);
  b.add(msg(2, 700), 0.0);
  EXPECT_EQ(b.usedBytes(), 2 * kHeaderBytes + 1200u);
}

std::vector<MessageId> walkOrder(const MessageBuffer& b) {
  std::vector<MessageId> ids;
  for (std::uint32_t s = b.firstSlot(); s != MessageBuffer::kNil; s = b.nextSlot(s))
    ids.push_back(b.at(s).id);
  return ids;
}

TEST(MessageBuffer, CursorWalksFifoOrderAcrossSlotRecycling) {
  // Pooled slots recycle in LIFO order, but the cursor must always walk
  // insertion (FIFO) order — forwarding fairness and drop-oldest both
  // depend on it.
  MessageBuffer b(1 << 20);
  for (MessageId id = 1; id <= 5; ++id) EXPECT_TRUE(b.add(msg(id), 0.0));
  EXPECT_EQ(walkOrder(b), (std::vector<MessageId>{1, 2, 3, 4, 5}));

  // Remove from the middle and the ends, then refill: freed slots are
  // reused out of order while the walk stays FIFO.
  b.removeById(3);
  b.removeById(1);
  b.removeById(5);
  EXPECT_EQ(walkOrder(b), (std::vector<MessageId>{2, 4}));
  for (MessageId id = 6; id <= 9; ++id) EXPECT_TRUE(b.add(msg(id), 0.0));
  EXPECT_EQ(walkOrder(b), (std::vector<MessageId>{2, 4, 6, 7, 8, 9}));

  // forEach visits the same sequence as the cursor.
  std::vector<MessageId> seen;
  b.forEach([&seen](const Message& m) { seen.push_back(m.id); });
  EXPECT_EQ(seen, walkOrder(b));

  // Overflow drops the oldest in that same order.
  MessageBuffer tiny(2 * kHeaderBytes);
  EXPECT_TRUE(tiny.add(msg(11), 0.0));
  EXPECT_TRUE(tiny.add(msg(12), 0.0));
  EXPECT_TRUE(tiny.add(msg(13), 0.0));
  EXPECT_EQ(walkOrder(tiny), (std::vector<MessageId>{12, 13}));
}

TEST(MessageBuffer, DeadlineExactlyNowIsExpired) {
  // The repo-wide convention (net::messageExpired): a message dies the
  // instant the clock reaches its deadline — deadline == now is expired,
  // not live. Deadline 0 means "no deadline".
  Message m = msg(1, 0, 10.0);
  EXPECT_FALSE(messageExpired(m, 9.999999));
  EXPECT_TRUE(messageExpired(m, 10.0));
  EXPECT_TRUE(messageExpired(m, 10.5));
  EXPECT_FALSE(messageExpired(msg(2, 0, 0.0), 1e18));

  MessageBuffer b(4096);
  b.add(m, 0.0);
  EXPECT_TRUE(b.hasLive(9.999999));
  EXPECT_FALSE(b.hasLive(10.0));  // watermark agrees with the convention
  b.purgeExpired(10.0);           // ...and so does the purge boundary
  EXPECT_TRUE(b.empty());
}

TEST(MessageBuffer, HasLiveMatchesFullScanUnderRandomChurn) {
  // Property check for the deadline watermark: hasLive(now) must equal a
  // full scan for any un-expired message, under arbitrary interleavings of
  // add (mixed forever/timed deadlines), targeted removal, predicate
  // removal, purges, and drop-oldest capacity pressure.
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(rng >> 33);
  };
  for (int trial = 0; trial < 20; ++trial) {
    MessageBuffer b(6 * kHeaderBytes);  // tight: overflow evicts the oldest
    sim::SimTime now = 0.0;
    MessageId nextId = 1;
    for (int step = 0; step < 400; ++step) {
      now += static_cast<sim::SimTime>(next() % 100) / 10.0;
      switch (next() % 6) {
        case 0:
        case 1:
        case 2: {  // add; deadline may be forever, future, == now, or past
          Message m = msg(nextId++);
          const std::uint32_t kind = next() % 8;
          if (kind == 0) m.deadline = 0.0;
          else if (kind == 1) m.deadline = now;
          else m.deadline = now + static_cast<sim::SimTime>(next() % 300) / 10.0 - 5.0;
          if (m.deadline < 0.0) m.deadline = 0.0;
          b.add(m, now);
          break;
        }
        case 3: {  // remove a specific id (maybe absent)
          b.removeById(1 + next() % nextId);
          break;
        }
        case 4: {  // predicate removal, as forwarding/delivery does
          const MessageId mod = 2 + next() % 3;
          b.removeIf([mod](const Message& m) { return m.id % mod == 0; });
          break;
        }
        case 5:
          b.purgeExpired(now);
          break;
      }
      bool scanLive = false;
      b.forEach([&](const Message& m) {
        if (!messageExpired(m, now)) scanLive = true;
      });
      ASSERT_EQ(b.hasLive(now), scanLive)
          << "trial " << trial << " step " << step << " now " << now
          << " size " << b.size();
      // The watermark must also answer correctly for *future* instants —
      // that is what lets node activity decay between serial events.
      const sim::SimTime later = now + static_cast<sim::SimTime>(next() % 200) / 10.0;
      bool scanLater = false;
      b.forEach([&](const Message& m) {
        if (!messageExpired(m, later)) scanLater = true;
      });
      ASSERT_EQ(b.hasLive(later), scanLater)
          << "trial " << trial << " step " << step << " later " << later;
    }
  }
}

}  // namespace
}  // namespace dtncache::net
