#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.hpp"
#include "trace/contact.hpp"

namespace dtncache::net {
namespace {

trace::ContactTrace makeTrace() {
  std::vector<trace::Contact> cs = {
      {10.0, 5.0, 0, 1},
      {20.0, 10.0, 1, 2},
      {30.0, 1.0, 0, 2},
  };
  return trace::ContactTrace(3, std::move(cs));
}

TEST(Network, DeliversContactsInOrder) {
  sim::Simulator s;
  const auto trace = makeTrace();
  Network net(s, trace);
  std::vector<sim::SimTime> seen;
  net.start([&](NodeId, NodeId, sim::SimTime t, sim::SimTime, ContactChannel&) {
    seen.push_back(t);
  });
  s.run();
  EXPECT_EQ(seen, (std::vector<sim::SimTime>{10.0, 20.0, 30.0}));
  EXPECT_EQ(net.contactsDelivered(), 3u);
}

TEST(Network, BudgetScalesWithDurationAndBandwidth) {
  sim::Simulator s;
  const auto trace = makeTrace();
  NetworkConfig cfg;
  cfg.bandwidthBytesPerSec = 1000.0;
  cfg.minContactBudgetBytes = 1;
  Network net(s, trace, cfg);
  std::vector<std::uint64_t> budgets;
  net.start([&](NodeId, NodeId, sim::SimTime, sim::SimTime, ContactChannel& ch) {
    budgets.push_back(ch.remainingBytes());
  });
  s.run();
  EXPECT_EQ(budgets, (std::vector<std::uint64_t>{5000, 10000, 1000}));
}

TEST(Network, MinBudgetFloorApplies) {
  sim::Simulator s;
  std::vector<trace::Contact> cs = {{1.0, 0.0, 0, 1}};  // zero-duration artifact
  trace::ContactTrace trace(2, std::move(cs));
  Network net(s, trace);
  std::uint64_t budget = 0;
  net.start([&](NodeId, NodeId, sim::SimTime, sim::SimTime, ContactChannel& ch) {
    budget = ch.remainingBytes();
  });
  s.run();
  EXPECT_EQ(budget, NetworkConfig{}.minContactBudgetBytes);
}

TEST(ContactChannel, EnforcesBudget) {
  TransferLog log;
  ContactChannel ch(100, log);
  EXPECT_TRUE(ch.transfer(Traffic::kRefresh, 60));
  EXPECT_FALSE(ch.transfer(Traffic::kRefresh, 60));  // would exceed
  EXPECT_TRUE(ch.transfer(Traffic::kControl, 40));
  EXPECT_EQ(ch.remainingBytes(), 0u);
}

TEST(ContactChannel, FailedTransferNotLogged) {
  TransferLog log;
  ContactChannel ch(10, log);
  EXPECT_FALSE(ch.transfer(Traffic::kQuery, 100));
  EXPECT_EQ(log.total().messages, 0u);
  EXPECT_EQ(log.total().bytes, 0u);
}

TEST(TransferLog, AccumulatesByCategory) {
  TransferLog log;
  log.record(Traffic::kRefresh, 100);
  log.record(Traffic::kRefresh, 50);
  log.record(Traffic::kQuery, 10);
  EXPECT_EQ(log.of(Traffic::kRefresh).messages, 2u);
  EXPECT_EQ(log.of(Traffic::kRefresh).bytes, 150u);
  EXPECT_EQ(log.of(Traffic::kQuery).bytes, 10u);
  EXPECT_EQ(log.total().messages, 3u);
  EXPECT_EQ(log.total().bytes, 160u);
}

TEST(Network, StartTwiceThrows) {
  sim::Simulator s;
  const auto trace = makeTrace();
  Network net(s, trace);
  auto noop = [](NodeId, NodeId, sim::SimTime, sim::SimTime, ContactChannel&) {};
  net.start(noop);
  EXPECT_THROW(net.start(noop), InvariantViolation);
}

TEST(Network, SkipsContactsBeforeCurrentTime) {
  sim::Simulator s;
  s.scheduleAt(15.0, [](sim::SimTime) {});
  s.run();  // clock now at 15
  const auto trace = makeTrace();
  Network net(s, trace);
  std::size_t count = 0;
  net.start([&](NodeId, NodeId, sim::SimTime, sim::SimTime, ContactChannel&) { ++count; });
  s.run();
  EXPECT_EQ(count, 2u);  // the t=10 contact is skipped
}

TEST(Network, ContactLossDropsExpectedFraction) {
  sim::Simulator s;
  std::vector<trace::Contact> cs;
  for (int i = 0; i < 4000; ++i)
    cs.push_back({static_cast<double>(i), 1.0, 0, 1});
  trace::ContactTrace trace(2, std::move(cs));
  NetworkConfig cfg;
  cfg.contactLossRate = 0.3;
  Network net(s, trace, cfg);
  net.start([](NodeId, NodeId, sim::SimTime, sim::SimTime, ContactChannel&) {});
  s.run();
  EXPECT_EQ(net.contactsDelivered() + net.contactsLost(), 4000u);
  EXPECT_NEAR(static_cast<double>(net.contactsLost()) / 4000.0, 0.3, 0.03);
}

TEST(Network, ZeroLossDeliversEverything) {
  sim::Simulator s;
  const auto trace = makeTrace();
  Network net(s, trace);
  net.start([](NodeId, NodeId, sim::SimTime, sim::SimTime, ContactChannel&) {});
  s.run();
  EXPECT_EQ(net.contactsLost(), 0u);
  EXPECT_EQ(net.contactsDelivered(), 3u);
}

TEST(Network, LossIsDeterministicInSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator s;
    std::vector<trace::Contact> cs;
    for (int i = 0; i < 500; ++i) cs.push_back({static_cast<double>(i), 1.0, 0, 1});
    trace::ContactTrace trace(2, std::move(cs));
    NetworkConfig cfg;
    cfg.contactLossRate = 0.5;
    cfg.lossSeed = seed;
    Network net(s, trace, cfg);
    net.start([](NodeId, NodeId, sim::SimTime, sim::SimTime, ContactChannel&) {});
    s.run();
    return net.contactsLost();
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST(TrafficNames, AllDistinct) {
  EXPECT_STREQ(trafficName(Traffic::kControl), "control");
  EXPECT_STREQ(trafficName(Traffic::kRefresh), "refresh");
  EXPECT_STREQ(trafficName(Traffic::kPlacement), "placement");
  EXPECT_STREQ(trafficName(Traffic::kQuery), "query");
  EXPECT_STREQ(trafficName(Traffic::kReply), "reply");
  EXPECT_STREQ(trafficName(Traffic::kPull), "pull");
}

}  // namespace
}  // namespace dtncache::net
