#include "net/energy.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dtncache::net {
namespace {

EnergyConfig config(double battery = 100.0) {
  EnergyConfig c;
  c.batteryJoules = battery;
  c.txJoulesPerMB = 10.0;
  c.rxJoulesPerMB = 5.0;
  c.scanJoulesPerContact = 1.0;
  c.idleJoulesPerHour = 2.0;
  return c;
}

TEST(Energy, StartsFull) {
  EnergyModel e(4, config());
  for (NodeId n = 0; n < 4; ++n) {
    EXPECT_DOUBLE_EQ(e.remaining(n), 100.0);
    EXPECT_DOUBLE_EQ(e.remainingFraction(n), 1.0);
    EXPECT_FALSE(e.depleted(n));
  }
  EXPECT_EQ(e.depletedCount(), 0u);
  EXPECT_TRUE(std::isinf(e.firstDepletionTime()));
}

TEST(Energy, TransferChargesTxAndRx) {
  EnergyModel e(4, config());
  e.onTransfer(0, 1, 2 * 1024 * 1024);  // 2 MB
  EXPECT_DOUBLE_EQ(e.remaining(0), 100.0 - 20.0);
  EXPECT_DOUBLE_EQ(e.remaining(1), 100.0 - 10.0);
  EXPECT_DOUBLE_EQ(e.remaining(2), 100.0);
}

TEST(Energy, UnknownEndpointsSkipped) {
  EnergyModel e(4, config());
  e.onTransfer(kNoNode, 1, 1024 * 1024);
  e.onTransfer(0, kNoNode, 1024 * 1024);
  EXPECT_DOUBLE_EQ(e.remaining(1), 95.0);
  EXPECT_DOUBLE_EQ(e.remaining(0), 90.0);
}

TEST(Energy, ScanChargesBothEndpoints) {
  EnergyModel e(4, config());
  e.onContact(0, 2);
  EXPECT_DOUBLE_EQ(e.remaining(0), 99.0);
  EXPECT_DOUBLE_EQ(e.remaining(2), 99.0);
}

TEST(Energy, IdleDrainIsTimeProportional) {
  EnergyModel e(2, config());
  e.advanceTo(sim::hours(10));
  EXPECT_DOUBLE_EQ(e.remaining(0), 80.0);
  e.advanceTo(sim::hours(15));
  EXPECT_DOUBLE_EQ(e.remaining(0), 70.0);
}

TEST(Energy, AdvanceIsMonotoneAndIdempotent) {
  EnergyModel e(2, config());
  e.advanceTo(sim::hours(5));
  e.advanceTo(sim::hours(5));
  e.advanceTo(sim::hours(3));  // going "back" must not re-drain
  EXPECT_DOUBLE_EQ(e.remaining(0), 90.0);
}

TEST(Energy, DepletionClampsAtZeroAndRecordsTime) {
  EnergyModel e(2, config(10.0));
  e.advanceTo(sim::hours(2));       // 4 J idle → 6 J left each
  e.onTransfer(0, 1, 1024 * 1024);  // node 0: -10 J → dead; node 1: -5 J → 1 J
  EXPECT_TRUE(e.depleted(0));
  EXPECT_DOUBLE_EQ(e.remaining(0), 0.0);
  EXPECT_FALSE(e.depleted(1));
  EXPECT_NEAR(e.remaining(1), 1.0, 1e-9);
  EXPECT_EQ(e.depletedCount(), 1u);
  EXPECT_DOUBLE_EQ(e.firstDepletionTime(), sim::hours(2));
}

TEST(Energy, DeadNodesStopDraining) {
  EnergyModel e(2, config(5.0));
  e.advanceTo(sim::hours(100));  // everyone long dead
  e.onTransfer(0, 1, 10 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(e.remaining(0), 0.0);
  EXPECT_DOUBLE_EQ(e.remaining(1), 0.0);
}

TEST(Energy, AggregateStats) {
  EnergyModel e(4, config());
  e.onTransfer(0, 1, 4 * 1024 * 1024);  // 0: -40, 1: -20
  EXPECT_NEAR(e.meanRemainingFraction(), (60 + 80 + 100 + 100) / 400.0, 1e-12);
  EXPECT_NEAR(e.minRemainingFraction(), 0.6, 1e-12);
}

TEST(Energy, InvalidConfigRejected) {
  EnergyConfig c;
  c.batteryJoules = 0.0;
  EXPECT_THROW(EnergyModel(2, c), InvariantViolation);
}

}  // namespace
}  // namespace dtncache::net
