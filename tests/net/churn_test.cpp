#include "net/churn.hpp"

#include <gtest/gtest.h>

#include "sim/simulator.hpp"

namespace dtncache::net {
namespace {

TEST(Churn, AllNodesStartUp) {
  sim::Simulator s;
  ChurnProcess churn(s, 10, {}, sim::days(10));
  for (NodeId n = 0; n < 10; ++n) EXPECT_TRUE(churn.isUp(n));
  EXPECT_DOUBLE_EQ(churn.upFraction(), 1.0);
}

TEST(Churn, NodesFlipOverTime) {
  sim::Simulator s;
  ChurnConfig cfg;
  cfg.meanUptime = sim::hours(10);
  cfg.meanDowntime = sim::hours(10);
  ChurnProcess churn(s, 20, cfg, sim::days(10));
  s.runUntil(sim::days(10));
  EXPECT_GT(churn.transitions(), 100u);  // ~20 nodes * 24 flips expected
}

TEST(Churn, LongRunUpFractionMatchesDutyCycle) {
  sim::Simulator s;
  ChurnConfig cfg;
  cfg.meanUptime = sim::hours(30);
  cfg.meanDowntime = sim::hours(10);  // duty cycle 0.75
  cfg.seed = 4;
  ChurnProcess churn(s, 200, cfg, sim::days(30));
  // Sample the up fraction daily after an initial transient.
  double sum = 0.0;
  int samples = 0;
  for (double d = 10.0; d <= 30.0; d += 1.0) {
    s.runUntil(sim::days(d));
    sum += churn.upFraction();
    ++samples;
  }
  EXPECT_NEAR(sum / samples, 0.75, 0.05);
}

TEST(Churn, ProtectedNodesNeverGoDown) {
  sim::Simulator s;
  ChurnConfig cfg;
  cfg.meanUptime = sim::minutes(10);  // aggressive churn
  cfg.meanDowntime = sim::hours(10);
  ChurnProcess churn(s, 10, cfg, sim::days(5), {3, 7});
  bool violated = false;
  churn.addListener([&](NodeId n, bool, sim::SimTime) {
    if (n == 3 || n == 7) violated = true;
  });
  s.runUntil(sim::days(5));
  EXPECT_FALSE(violated);
  EXPECT_TRUE(churn.isUp(3));
  EXPECT_TRUE(churn.isUp(7));
  EXPECT_LT(churn.upFraction(), 1.0);  // the others did churn
}

TEST(Churn, ListenersSeeEveryTransition) {
  sim::Simulator s;
  ChurnConfig cfg;
  cfg.meanUptime = sim::hours(5);
  cfg.meanDowntime = sim::hours(5);
  ChurnProcess churn(s, 5, cfg, sim::days(5));
  std::size_t events = 0;
  churn.addListener([&](NodeId, bool, sim::SimTime) { ++events; });
  s.runUntil(sim::days(5));
  EXPECT_EQ(events, churn.transitions());
  EXPECT_GT(events, 0u);
}

TEST(Churn, ListenerStateMatchesIsUp) {
  sim::Simulator s;
  ChurnConfig cfg;
  cfg.meanUptime = sim::hours(2);
  cfg.meanDowntime = sim::hours(2);
  ChurnProcess churn(s, 5, cfg, sim::days(3));
  churn.addListener([&](NodeId n, bool up, sim::SimTime) {
    EXPECT_EQ(up, churn.isUp(n));
  });
  s.runUntil(sim::days(3));
}

TEST(Churn, ContactFilterRequiresBothUp) {
  sim::Simulator s;
  ChurnConfig cfg;
  cfg.meanUptime = sim::hours(1);
  cfg.meanDowntime = sim::hours(1000);  // first flip is final
  ChurnProcess churn(s, 3, cfg, sim::days(1), {0});
  s.runUntil(sim::days(1));
  // Nodes 1 and 2 are down by now; 0 is protected.
  EXPECT_TRUE(churn.isUp(0));
  EXPECT_FALSE(churn.isUp(1));
  EXPECT_TRUE(churn.contactAllowed(0, 0));
  EXPECT_FALSE(churn.contactAllowed(0, 1));
  EXPECT_FALSE(churn.contactAllowed(1, 2));
}

TEST(Churn, DeterministicInSeed) {
  auto run = [](std::uint64_t seed) {
    sim::Simulator s;
    ChurnConfig cfg;
    cfg.seed = seed;
    cfg.meanUptime = sim::hours(8);
    cfg.meanDowntime = sim::hours(8);
    ChurnProcess churn(s, 10, cfg, sim::days(5));
    s.runUntil(sim::days(5));
    return churn.transitions();
  };
  EXPECT_EQ(run(1), run(1));
  EXPECT_NE(run(1), run(2));
}

TEST(Churn, InvalidConfigRejected) {
  sim::Simulator s;
  ChurnConfig cfg;
  cfg.meanUptime = 0.0;
  EXPECT_THROW(ChurnProcess(s, 5, cfg, sim::days(1)), InvariantViolation);
}

}  // namespace
}  // namespace dtncache::net
