/// \file contact_cursor_test.cpp
/// Equivalence of the streaming contact cursor with the old eager fan-out.
///
/// Network::start used to schedule one closure per contact up front; it now
/// walks the trace with a single self-rescheduling event holding reserved
/// FIFO ranks. These tests pin the observable contract: the delivery
/// sequence (including loss draws, filter suppression, and warm-up
/// truncation) is identical to an eager fan-out reference built on the same
/// simulator primitives, ordering against same-time foreign events is
/// unchanged, and the pending set no longer scales with trace length.

#include "net/network.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <tuple>
#include <vector>

#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "trace/contact.hpp"
#include "trace/generators.hpp"

namespace dtncache::net {
namespace {

struct Delivery {
  NodeId a;
  NodeId b;
  sim::SimTime t;
  sim::SimTime duration;
  std::uint64_t budget;
  bool operator==(const Delivery&) const = default;
};

trace::ContactTrace syntheticTrace(std::uint64_t seed) {
  trace::SyntheticTraceConfig cfg;
  cfg.nodeCount = 20;
  cfg.duration = sim::hours(6);
  cfg.meanContactsPerPairPerDay = 40.0;  // dense: ties & volume in 6 sim-hours
  cfg.seed = seed;
  return trace::generate(cfg).trace;
}

/// Eager fan-out reference: the pre-cursor Network::start, reconstructed on
/// the public simulator API. One closure per contact, scheduled in trace
/// order; an independent Rng replica consumes loss draws in delivery order.
std::vector<Delivery> eagerReference(const trace::ContactTrace& trace,
                                     const NetworkConfig& cfg, sim::SimTime startAt,
                                     sim::SimTime runUntil,
                                     const Network::ContactFilter& filter) {
  sim::Simulator s;
  s.runUntil(startAt);
  sim::Rng lossRng(cfg.lossSeed);
  std::vector<Delivery> out;
  for (const auto& c : trace.contacts()) {
    if (c.start < s.now()) continue;  // warm-up prefix skip
    s.scheduleAt(c.start, [&, c](sim::SimTime t) {
      if (cfg.contactLossRate > 0.0 && lossRng.bernoulli(cfg.contactLossRate)) return;
      if (filter && !filter(c.a, c.b, t)) return;
      const auto budget = std::max<std::uint64_t>(
          cfg.minContactBudgetBytes,
          static_cast<std::uint64_t>(std::llround(c.duration * cfg.bandwidthBytesPerSec)));
      out.push_back({c.a, c.b, t, c.duration, budget});
    });
  }
  s.runUntil(runUntil);
  return out;
}

std::vector<Delivery> cursorRun(const trace::ContactTrace& trace, const NetworkConfig& cfg,
                                sim::SimTime startAt, sim::SimTime runUntil,
                                const Network::ContactFilter& filter,
                                std::size_t* peakPending = nullptr) {
  sim::Simulator s;
  s.runUntil(startAt);
  Network net(s, trace, cfg);
  if (filter) net.setContactFilter(filter);
  std::vector<Delivery> out;
  net.start([&](NodeId a, NodeId b, sim::SimTime t, sim::SimTime dur, ContactChannel& ch) {
    out.push_back({a, b, t, dur, ch.remainingBytes()});
  });
  s.runUntil(runUntil);
  if (peakPending != nullptr) *peakPending = s.peakPendingEvents();
  return out;
}

TEST(ContactCursor, MatchesEagerFanoutPlain) {
  const auto trace = syntheticTrace(11);
  ASSERT_GT(trace.contacts().size(), 100u);
  NetworkConfig cfg;
  const auto expect = eagerReference(trace, cfg, 0.0, sim::hours(7), nullptr);
  const auto got = cursorRun(trace, cfg, 0.0, sim::hours(7), nullptr);
  EXPECT_EQ(got, expect);
  EXPECT_EQ(got.size(), trace.contacts().size());
}

TEST(ContactCursor, MatchesEagerFanoutUnderLoss) {
  const auto trace = syntheticTrace(12);
  NetworkConfig cfg;
  cfg.contactLossRate = 0.3;
  cfg.lossSeed = 99;
  const auto expect = eagerReference(trace, cfg, 0.0, sim::hours(7), nullptr);
  const auto got = cursorRun(trace, cfg, 0.0, sim::hours(7), nullptr);
  EXPECT_EQ(got, expect);
  EXPECT_LT(got.size(), trace.contacts().size());  // some contacts actually lost
  EXPECT_GT(got.size(), 0u);
}

TEST(ContactCursor, MatchesEagerFanoutUnderFilterAndLoss) {
  const auto trace = syntheticTrace(13);
  NetworkConfig cfg;
  cfg.contactLossRate = 0.1;
  // Suppress any contact touching node 3 — and prove suppression happens
  // AFTER the loss draw, so the Rng stream stays aligned with the eager
  // reference (the old code drew loss first too).
  const Network::ContactFilter filter = [](NodeId a, NodeId b, sim::SimTime) {
    return a != 3 && b != 3;
  };
  const auto expect = eagerReference(trace, cfg, 0.0, sim::hours(7), filter);
  const auto got = cursorRun(trace, cfg, 0.0, sim::hours(7), filter);
  EXPECT_EQ(got, expect);
  for (const auto& d : got) {
    EXPECT_NE(d.a, 3u);
    EXPECT_NE(d.b, 3u);
  }
}

TEST(ContactCursor, MatchesEagerFanoutWithWarmupTruncation) {
  // start() after the simulator has already advanced: the past prefix of
  // the trace is skipped identically on both sides.
  const auto trace = syntheticTrace(14);
  NetworkConfig cfg;
  const sim::SimTime warmup = sim::hours(2);
  const auto expect = eagerReference(trace, cfg, warmup, sim::hours(7), nullptr);
  const auto got = cursorRun(trace, cfg, warmup, sim::hours(7), nullptr);
  EXPECT_EQ(got, expect);
  EXPECT_LT(got.size(), trace.contacts().size());
  EXPECT_GT(got.size(), 0u);
}

TEST(ContactCursor, ForeignEventAtSameTimeStillFiresAfterContact) {
  // With the eager fan-out, every contact event was scheduled inside
  // start(), so a protocol timer scheduled AFTER start() for the same
  // instant fired after the contact. Reserved sequence ranks must preserve
  // exactly that, even though the cursor physically schedules contact i
  // only when contact i-1 fires.
  std::vector<trace::Contact> cs = {{10.0, 1.0, 0, 1}, {20.0, 1.0, 1, 2}};
  trace::ContactTrace trace(3, std::move(cs));
  sim::Simulator s;
  Network net(s, trace);
  std::vector<int> order;
  net.start([&](NodeId, NodeId, sim::SimTime, sim::SimTime, ContactChannel&) {
    order.push_back(0);
  });
  s.scheduleAt(20.0, [&](sim::SimTime) { order.push_back(1); });  // ties contact #2
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 0, 1}));
}

TEST(ContactCursor, PendingSetStaysFlatDuringReplay) {
  const auto trace = syntheticTrace(15);
  ASSERT_GT(trace.contacts().size(), 500u);
  std::size_t peak = 0;
  cursorRun(trace, NetworkConfig{}, 0.0, sim::hours(7), nullptr, &peak);
  // One cursor event live at a time (plus transient bookkeeping) — nowhere
  // near the O(#contacts) the eager fan-out held pending.
  EXPECT_LE(peak, 4u);
}

}  // namespace
}  // namespace dtncache::net
