#include "obs/tracer.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "obs/event.hpp"
#include "sim/assert.hpp"

namespace dtncache::obs {
namespace {

TEST(EventKind, WireNamesRoundTrip) {
  for (std::size_t k = 0; k < static_cast<std::size_t>(EventKind::kKindCount); ++k) {
    const auto kind = static_cast<EventKind>(k);
    const std::string name = eventKindName(kind);
    EXPECT_NE(name, "?") << "kind " << k << " has no wire name";
    const auto parsed = parseEventKind(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parseEventKind("no_such_kind").has_value());
}

TEST(EventKind, FilterParsing) {
  EXPECT_EQ(parseKindFilter(""), kAllKinds);
  EXPECT_EQ(parseKindFilter("push"), kindBit(EventKind::kPush));
  EXPECT_EQ(parseKindFilter("push,contact"),
            kindBit(EventKind::kPush) | kindBit(EventKind::kContact));
  EXPECT_THROW(parseKindFilter("push,tpyo"), InvariantViolation);
}

TEST(Tracer, RendersExactJsonlLine) {
  // Direct emit() so the byte-exact schema is checked even in
  // -DDTNCACHE_TRACE=OFF builds (where the macro expands to nothing).
  Tracer tracer("abc123");
  tracer.emit(EventKind::kPush, 3.5,
              {{"from", 1u}, {"to", 2u}, {"p", 0.25}, {"fresh", true}, {"cat", "refresh"}});
  EXPECT_EQ(tracer.buffer(),
            "{\"run\": \"abc123\", \"t\": 3.5, \"kind\": \"push\", \"from\": 1, "
            "\"to\": 2, \"p\": 0.25, \"fresh\": true, \"cat\": \"refresh\"}\n");
  EXPECT_EQ(tracer.eventCount(), 1u);
}

TEST(Tracer, TextValuesAreEscaped) {
  Tracer tracer("r");
  tracer.emit(EventKind::kQuery, 0.0, {{"s", "a\"b\\c"}});
  EXPECT_NE(tracer.buffer().find("\"s\": \"a\\\"b\\\\c\""), std::string::npos);
}

TEST(Tracer, FilterDropsUnwantedKindsWithoutEvaluatingFields) {
  Tracer tracer("r", kindBit(EventKind::kPush));
  int evaluations = 0;
  const auto arg = [&evaluations] {
    ++evaluations;
    return 7u;
  };
  DTNCACHE_EVENT(&tracer, EventKind::kQuery, 1.0, {"n", arg()});
  DTNCACHE_EVENT(&tracer, EventKind::kPush, 2.0, {"n", arg()});
#if DTNCACHE_TRACE_ENABLED
  EXPECT_EQ(tracer.eventCount(), 1u);
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(tracer.buffer().find("\"kind\": \"push\""), std::string::npos);
#else
  EXPECT_EQ(tracer.eventCount(), 0u);
  EXPECT_EQ(evaluations, 0);
#endif
}

TEST(Tracer, NullTracerAddsNothingAndEvaluatesNothing) {
  int evaluations = 0;
  const auto arg = [&evaluations] {
    ++evaluations;
    return 7u;
  };
  Tracer* none = nullptr;
  DTNCACHE_EVENT(none, EventKind::kPush, 1.0, {"n", arg()});
  EXPECT_EQ(evaluations, 0);
}

TEST(Tracer, FlushMovesBufferToStreamAndClears) {
  Tracer tracer("r");
  tracer.emit(EventKind::kVersionBump, 1.0, {{"item", 0u}});
  tracer.emit(EventKind::kVersionBump, 2.0, {{"item", 1u}});
  std::ostringstream out;
  tracer.flushTo(out);
  EXPECT_EQ(tracer.buffer(), "");
  EXPECT_EQ(tracer.eventCount(), 2u);  // count survives the flush
  const std::string text = out.str();
  EXPECT_NE(text.find("\"t\": 1"), std::string::npos);
  EXPECT_NE(text.find("\"t\": 2"), std::string::npos);
}

TEST(Tracer, DoubleRenderingMatchesResultSinkFormatter) {
  // Shared 17-significant-digit formatter: exact round-trip values.
  EXPECT_EQ(jsonNumber(0.5), "0.5");
  EXPECT_EQ(jsonNumber(1.0 / 3.0), "0.33333333333333331");
  std::istringstream in(jsonNumber(1.0 / 3.0));
  double back = 0.0;
  in >> back;
  EXPECT_EQ(back, 1.0 / 3.0);
}

}  // namespace
}  // namespace dtncache::obs
