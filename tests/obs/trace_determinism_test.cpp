#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "obs/tracer.hpp"
#include "runner/experiment.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/sweep_engine.hpp"

/// End-to-end contracts of the observability layer:
///   - a sweep's merged event trace is byte-identical at any --jobs count
///     (per-job tracers, flushed in job-index order);
///   - counters are deterministic and identical across repeated runs;
///   - running with tracing enabled does not change simulation results;
///   - result sinks carry the full pre-registered ctr.* column set on
///     every row, whatever the scheme.

namespace dtncache::sweep {
namespace {

runner::ExperimentConfig tinyConfig() {
  runner::ExperimentConfig cfg;
  cfg.trace = trace::homogeneousConfig(15, 6.0, sim::days(3), 9);
  cfg.catalog.itemCount = 3;
  cfg.catalog.refreshPeriod = sim::hours(12);
  cfg.workload.queriesPerNodePerDay = 2.0;
  cfg.cache.cachingNodesPerItem = 5;
  cfg.estimatorWarmup = sim::days(1);
  return cfg;
}

SweepGrid tinyGrid() {
  SweepGrid grid;
  grid.base = tinyConfig();
  grid.schemes = {runner::SchemeKind::kHierarchical, runner::SchemeKind::kEpidemic};
  grid.seeds = {1, 2};
  return grid;
}

std::string runTraced(std::size_t jobs, obs::KindMask filter = obs::kAllKinds) {
  std::ostringstream trace;
  SweepOptions options;
  options.jobs = jobs;
  options.traceOut = &trace;
  options.traceFilter = filter;
  SweepEngine engine(options);
  engine.run(tinyGrid());
  return trace.str();
}

#if DTNCACHE_TRACE_ENABLED

TEST(TraceDeterminism, MergedTraceIsByteIdenticalAcrossJobCounts) {
  const std::string serial = runTraced(1);
  const std::string parallel = runTraced(4);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
}

TEST(TraceDeterminism, TraceHasJobLifecycleInIndexOrder) {
  const std::string text = runTraced(4, obs::kindBit(obs::EventKind::kJobStart) |
                                            obs::kindBit(obs::EventKind::kJobDone));
  // 4 jobs × (job_start + job_done), strictly interleaved per job because
  // buffers are flushed whole, in job-index order.
  std::istringstream lines(text);
  std::string line;
  std::size_t expectJob = 0;
  bool expectStart = true;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    const std::string kind = expectStart ? "job_start" : "job_done";
    EXPECT_NE(line.find("\"kind\": \"" + kind + "\""), std::string::npos) << line;
    EXPECT_NE(line.find("\"job\": " + std::to_string(expectJob)), std::string::npos)
        << line;
    if (!expectStart) ++expectJob;
    expectStart = !expectStart;
    ++count;
  }
  EXPECT_EQ(count, 8u);
}

TEST(TraceDeterminism, FilterKeepsOnlyRequestedKinds) {
  const std::string text = runTraced(2, obs::kindBit(obs::EventKind::kVersionBump));
  EXPECT_FALSE(text.empty());
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line))
    EXPECT_NE(line.find("\"kind\": \"version_bump\""), std::string::npos) << line;
}

TEST(TraceDeterminism, SimCliPathTracerCollectsEvents) {
  // The single-run path: a caller-owned tracer handed in via the config.
  obs::Tracer tracer("single");
  auto cfg = tinyConfig();
  cfg.tracer = &tracer;
  const auto out = runner::runExperiment(cfg);
  EXPECT_GT(tracer.eventCount(), 0u);
  EXPECT_NE(tracer.buffer().find("\"kind\": \"contact\""), std::string::npos);
  EXPECT_NE(tracer.buffer().find("\"kind\": \"plan\""), std::string::npos);

  // Tracing must not perturb the simulation itself.
  auto plain = tinyConfig();
  const auto reference = runner::runExperiment(plain);
  EXPECT_EQ(out.results.queries.issued, reference.results.queries.issued);
  EXPECT_DOUBLE_EQ(out.results.meanFreshFraction, reference.results.meanFreshFraction);
  EXPECT_EQ(out.counters, reference.counters);
}

#else  // DTNCACHE_TRACE_ENABLED

TEST(TraceDeterminism, CompiledOutBuildEmitsNoEvents) {
  const std::string text = runTraced(2);
  EXPECT_TRUE(text.empty());

  obs::Tracer tracer("single");
  auto cfg = tinyConfig();
  cfg.tracer = &tracer;
  runner::runExperiment(cfg);
  EXPECT_EQ(tracer.eventCount(), 0u);
}

#endif  // DTNCACHE_TRACE_ENABLED

TEST(ObservabilityCounters, DeterministicAndConsistentWithScheme) {
  auto cfg = tinyConfig();
  const auto a = runner::runExperiment(cfg);
  const auto b = runner::runExperiment(cfg);
  EXPECT_EQ(a.counters, b.counters);
  ASSERT_FALSE(a.counters.empty());
  EXPECT_TRUE(std::is_sorted(a.counters.begin(), a.counters.end()));

  auto find = [&a](const std::string& name) -> std::uint64_t {
    for (const auto& [key, value] : a.counters)
      if (key == name) return value;
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_GT(find("net.contact.delivered"), 0u);
  EXPECT_GT(find("cache.push.delivered"), 0u);
  EXPECT_GT(find("core.maintenance.runs"), 0u);
  EXPECT_EQ(find("core.churn.repairs"), 0u);  // no churn configured
}

TEST(ObservabilityCounters, BaselineRowsCarryTheSameColumnSet) {
  auto cfg = tinyConfig();
  const auto ours = runner::runExperiment(cfg);
  cfg.scheme = runner::SchemeKind::kEpidemic;
  const auto baseline = runner::runExperiment(cfg);
  ASSERT_EQ(ours.counters.size(), baseline.counters.size());
  for (std::size_t i = 0; i < ours.counters.size(); ++i)
    EXPECT_EQ(ours.counters[i].first, baseline.counters[i].first);
}

TEST(ObservabilityCounters, SinksRenderCounterColumns) {
  SweepGrid grid;
  grid.base = tinyConfig();
  std::ostringstream csv, jsonl;
  CsvSink csvSink(csv, /*wallClock=*/false);
  JsonlSink jsonlSink(jsonl, /*wallClock=*/false);
  SweepEngine engine(SweepOptions{1, false});
  engine.run(grid, {&csvSink, &jsonlSink});
  EXPECT_NE(csv.str().find("ctr.cache.push.delivered"), std::string::npos);
  EXPECT_NE(jsonl.str().find("\"ctr.net.contact.delivered\":"), std::string::npos);
  // Timers are wall-clock; with wallClock off they must not appear.
  EXPECT_EQ(csv.str().find("timer."), std::string::npos);
  EXPECT_EQ(jsonl.str().find("wall_ms"), std::string::npos);
}

}  // namespace
}  // namespace dtncache::sweep
