#include "obs/registry.hpp"

#include <gtest/gtest.h>

namespace dtncache::obs {
namespace {

TEST(Registry, CounterGetOrCreateWithStableAddress) {
  Registry registry;
  Counter& c = registry.counter("cache.push.delivered");
  EXPECT_EQ(c.value(), 0u);
  c.add();
  c.add(3);
  // Registering more names must not move the first counter (map nodes are
  // stable) — callers cache the pointer at wiring time.
  Counter* cached = &c;
  for (int i = 0; i < 64; ++i) registry.counter("filler." + std::to_string(i));
  EXPECT_EQ(cached, &registry.counter("cache.push.delivered"));
  EXPECT_EQ(cached->value(), 4u);
}

TEST(Registry, SnapshotIsSortedByName) {
  Registry registry;
  registry.counter("net.contact.delivered").add(2);
  registry.counter("cache.push.denied").add(1);
  registry.counter("core.reparent.count");
  const auto snapshot = registry.counterSnapshot();
  ASSERT_EQ(snapshot.size(), 3u);
  EXPECT_EQ(snapshot[0].first, "cache.push.denied");
  EXPECT_EQ(snapshot[0].second, 1u);
  EXPECT_EQ(snapshot[1].first, "core.reparent.count");
  EXPECT_EQ(snapshot[1].second, 0u);
  EXPECT_EQ(snapshot[2].first, "net.contact.delivered");
  EXPECT_EQ(snapshot[2].second, 2u);
}

TEST(Registry, TimerAccumulates) {
  Registry registry;
  Timer& t = registry.timer("core.maintenance");
  t.add(0.25);
  t.add(0.5);
  const auto snapshot = registry.timerSnapshot();
  ASSERT_EQ(snapshot.size(), 1u);
  EXPECT_EQ(snapshot[0].name, "core.maintenance");
  EXPECT_EQ(snapshot[0].count, 2u);
  EXPECT_DOUBLE_EQ(snapshot[0].seconds, 0.75);
}

TEST(Registry, ScopedTimerRecordsOneInterval) {
  Registry registry;
  Timer& t = registry.timer("runner.run");
  {
    ScopedTimer scope(t);
  }
  EXPECT_EQ(t.count(), 1u);
  EXPECT_GE(t.seconds(), 0.0);
}

TEST(Registry, ScopedTimerIsNullSafe) {
  ScopedTimer scope(nullptr);  // must not crash on destruction
}

}  // namespace
}  // namespace dtncache::obs
