#include "sim/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace dtncache::sim {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform() == b.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng a(7);
  Rng b(7);
  // Consume different amounts from the parents; forks must still agree.
  a.uniform();
  for (int i = 0; i < 50; ++i) b.uniform();
  Rng fa = a.fork(3);
  Rng fb = b.fork(3);
  for (int i = 0; i < 20; ++i) EXPECT_DOUBLE_EQ(fa.uniform(), fb.uniform());
}

TEST(Rng, ForksWithDifferentSaltsDecorrelated) {
  Rng root(9);
  Rng f1 = root.fork(1);
  Rng f2 = root.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (f1.uniform() == f2.uniform()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInRange) {
  Rng r(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(1);
  bool sawLo = false;
  bool sawHi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniformInt(0, 3);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 3);
    sawLo |= v == 0;
    sawHi |= v == 3;
  }
  EXPECT_TRUE(sawLo);
  EXPECT_TRUE(sawHi);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng r(5);
  const double rate = 0.25;
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.1);
}

TEST(Rng, BernoulliFrequency) {
  Rng r(11);
  int heads = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (r.bernoulli(0.3)) ++heads;
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.02);
}

TEST(Rng, ParetoRespectsScale) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(r.pareto(2.0, 1.5), 2.0);
}

TEST(Rng, ParetoTruncatedStaysInBounds) {
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.paretoTruncated(1.0, 1.5, 100.0);
    EXPECT_GE(x, 1.0);
    EXPECT_LE(x, 100.0);
  }
}

TEST(Rng, ParetoTruncatedIsHeavyTailed) {
  Rng r(3);
  int big = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (r.paretoTruncated(1.0, 1.0, 1000.0) > 10.0) ++big;
  // For alpha=1 truncated at 1000, P(X > 10) ≈ (1/10 - 1/1000)/(1 - 1/1000) ≈ 0.099.
  EXPECT_NEAR(static_cast<double>(big) / n, 0.099, 0.01);
}

TEST(Rng, InvalidParametersThrow) {
  Rng r(1);
  EXPECT_THROW(r.exponential(0.0), InvariantViolation);
  EXPECT_THROW(r.bernoulli(1.5), InvariantViolation);
  EXPECT_THROW(r.pareto(0.0, 1.0), InvariantViolation);
  EXPECT_THROW(r.uniform(5.0, 2.0), InvariantViolation);
}

TEST(ZipfSampler, ProbabilitiesSumToOne) {
  ZipfSampler z(10, 0.8);
  double sum = 0.0;
  for (std::size_t k = 0; k < z.size(); ++k) sum += z.probability(k);
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(ZipfSampler, ZeroExponentIsUniform) {
  ZipfSampler z(4, 0.0);
  for (std::size_t k = 0; k < 4; ++k) EXPECT_NEAR(z.probability(k), 0.25, 1e-12);
}

TEST(ZipfSampler, MostPopularIsItemZero) {
  ZipfSampler z(20, 1.0);
  for (std::size_t k = 1; k < 20; ++k) EXPECT_GT(z.probability(0), z.probability(k));
}

TEST(ZipfSampler, EmpiricalFrequencyMatchesTheory) {
  ZipfSampler z(5, 1.2);
  Rng r(17);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.sample(r)];
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, z.probability(k), 0.01);
}

}  // namespace
}  // namespace dtncache::sim
