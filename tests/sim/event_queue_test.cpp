#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dtncache::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.peekTime(), kNever);
}

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(3.0, [&](SimTime) { order.push_back(3); });
  q.schedule(1.0, [&](SimTime) { order.push_back(1); });
  q.schedule(2.0, [&](SimTime) { order.push_back(2); });
  while (!q.empty()) q.runNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, SimultaneousEventsRunFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) q.schedule(1.0, [&order, i](SimTime) { order.push_back(i); });
  while (!q.empty()) q.runNext();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ReportsFiringTime) {
  EventQueue q;
  SimTime seen = -1.0;
  q.schedule(7.5, [&](SimTime t) { seen = t; });
  const SimTime ran = q.runNext();
  EXPECT_DOUBLE_EQ(ran, 7.5);
  EXPECT_DOUBLE_EQ(seen, 7.5);
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int fired = 0;
  const EventId id = q.schedule(1.0, [&](SimTime) { ++fired; });
  q.schedule(2.0, [&](SimTime) { ++fired; });
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  while (!q.empty()) q.runNext();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelUnknownIdIsNoop) {
  EventQueue q;
  q.schedule(1.0, [](SimTime) {});
  q.cancel(9999);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, DoubleCancelDoesNotCorruptCount) {
  EventQueue q;
  const EventId id = q.schedule(1.0, [](SimTime) {});
  q.schedule(2.0, [](SimTime) {});
  q.cancel(id);
  q.cancel(id);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
}

TEST(EventQueue, PeekSkipsCancelled) {
  EventQueue q;
  const EventId early = q.schedule(1.0, [](SimTime) {});
  q.schedule(5.0, [](SimTime) {});
  q.cancel(early);
  EXPECT_DOUBLE_EQ(q.peekTime(), 5.0);
}

TEST(EventQueue, SchedulingInThePastThrows) {
  EventQueue q;
  q.schedule(10.0, [](SimTime) {});
  q.runNext();
  EXPECT_THROW(q.schedule(5.0, [](SimTime) {}), InvariantViolation);
}

TEST(EventQueue, SchedulingAtCurrentTimeIsAllowed) {
  EventQueue q;
  int fired = 0;
  q.schedule(10.0, [&](SimTime) {
    q.schedule(10.0, [&](SimTime) { ++fired; });
  });
  q.runNext();
  q.runNext();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, ClearDropsEverything) {
  EventQueue q;
  q.schedule(1.0, [](SimTime) {});
  q.schedule(2.0, [](SimTime) {});
  q.clear();
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.peekTime(), kNever);
}

TEST(EventQueue, ManyInterleavedOperationsStayOrdered) {
  EventQueue q;
  std::vector<SimTime> fired;
  std::vector<EventId> ids;
  for (int i = 100; i > 0; --i)
    ids.push_back(q.schedule(static_cast<SimTime>(i), [&](SimTime t) { fired.push_back(t); }));
  for (std::size_t i = 0; i < ids.size(); i += 2) q.cancel(ids[i]);
  while (!q.empty()) q.runNext();
  ASSERT_EQ(fired.size(), 50u);
  for (std::size_t i = 1; i < fired.size(); ++i) EXPECT_LT(fired[i - 1], fired[i]);
}

}  // namespace
}  // namespace dtncache::sim
