/// \file event_queue_stress_test.cpp
/// Randomized interleaving stress for the slot-table EventQueue against a
/// naive reference model.
///
/// The fuzz test (event_queue_fuzz_test.cpp) uses continuous times, where
/// ties have measure zero. This stress deliberately uses DISCRETE times so
/// that same-time events are common — the regime where the (time, sequence)
/// FIFO tiebreak and the generation-stamped cancel path actually carry the
/// determinism guarantee. The reference model is a plain vector searched
/// linearly: trivially correct, no shared code with the real queue.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/simulator.hpp"

namespace dtncache::sim {
namespace {

/// Reference: schedule order IS the FIFO rank among equal times.
struct RefEvent {
  SimTime time;
  std::uint64_t order;   ///< global schedule counter
  std::uint64_t payload; ///< identity checked at pop
  bool alive;
};

class ReferenceQueue {
 public:
  std::size_t schedule(SimTime at, std::uint64_t payload) {
    events_.push_back({at, nextOrder_++, payload, true});
    return events_.size() - 1;
  }
  void cancel(std::size_t handle) { events_[handle].alive = false; }
  std::size_t size() const {
    std::size_t n = 0;
    for (const auto& e : events_)
      if (e.alive) ++n;
    return n;
  }
  /// Pops the earliest (time, order) live event; returns its payload.
  std::uint64_t pop(SimTime* timeOut) {
    const RefEvent* best = nullptr;
    for (const auto& e : events_) {
      if (!e.alive) continue;
      if (!best || e.time < best->time ||
          (e.time == best->time && e.order < best->order)) {
        best = &e;
      }
    }
    EXPECT_NE(best, nullptr);
    const_cast<RefEvent*>(best)->alive = false;
    *timeOut = best->time;
    return best->payload;
  }

 private:
  std::vector<RefEvent> events_;
  std::uint64_t nextOrder_ = 0;
};

TEST(EventQueueStress, MatchesNaiveReferenceUnderRandomInterleaving) {
  for (std::uint64_t seed : {1ULL, 7ULL, 42ULL, 1234ULL}) {
    std::mt19937_64 rng(seed);
    EventQueue queue;
    ReferenceQueue ref;
    std::vector<std::pair<EventId, std::size_t>> live;  // (queue id, ref handle)
    std::vector<std::uint64_t> popped;                  // payloads, queue side
    std::vector<std::uint64_t> refPopped;
    std::uint64_t nextPayload = 0;
    SimTime now = 0.0;

    for (int step = 0; step < 4000; ++step) {
      const auto op = rng() % 10;
      if (op < 5) {
        // Schedule at a coarse discrete time so ties are frequent.
        const SimTime at = now + static_cast<SimTime>(rng() % 8);
        const std::uint64_t payload = nextPayload++;
        const EventId id = queue.schedule(
            at, [payload, &popped](SimTime) { popped.push_back(payload); });
        live.push_back({id, ref.schedule(at, payload)});
      } else if (op < 7 && !live.empty()) {
        // Cancel a random live event (and occasionally one already popped —
        // the generation stamp must make that a no-op).
        const auto pick = rng() % live.size();
        queue.cancel(live[pick].first);
        ref.cancel(live[pick].second);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(pick));
      } else if (!queue.empty()) {
        SimTime refTime = 0.0;
        refPopped.push_back(ref.pop(&refTime));
        const SimTime qTime = queue.runNext();
        EXPECT_EQ(qTime, refTime) << "seed " << seed << " step " << step;
        now = qTime;
        // Popped entries deliberately stay in `live`: a later cancel of a
        // consumed id exercises the generation stamp (no-op on both sides,
        // even if the slot has been reused by a newer event).
      }
      ASSERT_EQ(queue.size(), ref.size()) << "seed " << seed << " step " << step;
    }

    // Drain.
    while (!queue.empty()) {
      SimTime refTime = 0.0;
      refPopped.push_back(ref.pop(&refTime));
      EXPECT_EQ(queue.runNext(), refTime);
    }
    EXPECT_EQ(popped, refPopped) << "pop order diverged for seed " << seed;
    EXPECT_EQ(ref.size(), 0u);
  }
}

TEST(EventQueueStress, CancelOfPoppedIdIsNoop) {
  EventQueue queue;
  int fired = 0;
  const EventId a = queue.schedule(1.0, [&](SimTime) { ++fired; });
  queue.schedule(2.0, [&](SimTime) { ++fired; });
  queue.runNext();
  // `a` was consumed; its slot may be reused by the next schedule. The
  // generation stamp must keep the stale id from cancelling the newcomer.
  const EventId b = queue.schedule(3.0, [&](SimTime) { ++fired; });
  queue.cancel(a);
  EXPECT_EQ(queue.size(), 2u);
  queue.runNext();
  queue.runNext();
  EXPECT_EQ(fired, 3);
  (void)b;
}

TEST(EventQueueStress, ReservedSequencesInterleaveAheadOfLaterSchedules) {
  // A block of sequence numbers reserved up front outranks events scheduled
  // afterwards at the same time — the mechanism the contact cursor uses to
  // stay byte-identical with the old eager fan-out.
  EventQueue queue;
  std::vector<int> order;
  const auto base = queue.reserveSequences(2);
  queue.schedule(5.0, [&](SimTime) { order.push_back(3); });  // scheduled first...
  queue.scheduleAtSequence(5.0, base + 0, [&](SimTime) { order.push_back(1); });
  queue.scheduleAtSequence(5.0, base + 1, [&](SimTime) { order.push_back(2); });
  while (!queue.empty()) queue.runNext();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));  // ...but fires last
}

TEST(EventQueueStress, PeriodicSeriesInterleavesFifoWithOneShots) {
  // Periodic re-arms draw fresh sequence numbers at fire time, so a
  // periodic tick scheduled for time T ranks AFTER any one-shot already
  // scheduled for T — schedule order is fire order among equal times.
  Simulator s;
  std::vector<int> order;
  s.schedulePeriodic(1.0, [&](SimTime) { order.push_back(0); });
  s.scheduleAt(2.0, [&](SimTime) { order.push_back(1); });
  s.scheduleAt(3.0, [&](SimTime) { order.push_back(2); });
  s.runUntil(3.5);
  // t=1: tick. t=2: the one-shot was scheduled before the t=2 re-arm, so it
  // fires first. Same at t=3.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 0, 2, 0}));
}

}  // namespace
}  // namespace dtncache::sim
