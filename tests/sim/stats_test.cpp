#include "sim/stats.hpp"

#include <gtest/gtest.h>

namespace dtncache::sim {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);  // sample variance
}

TEST(Accumulator, SingleSampleVarianceZero) {
  Accumulator a;
  a.add(3.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, ResetClears) {
  Accumulator a;
  a.add(1.0);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
}

TEST(TimeWeightedMean, ConstantSignal) {
  TimeWeightedMean m;
  m.update(0.0, 0.5);
  EXPECT_DOUBLE_EQ(m.mean(10.0), 0.5);
}

TEST(TimeWeightedMean, StepSignal) {
  TimeWeightedMean m;
  m.update(0.0, 0.0);
  m.update(4.0, 1.0);  // 0 for 4s, then 1 for 6s
  EXPECT_DOUBLE_EQ(m.mean(10.0), 0.6);
}

TEST(TimeWeightedMean, MultipleSteps) {
  TimeWeightedMean m;
  m.update(0.0, 1.0);
  m.update(2.0, 3.0);
  m.update(6.0, 0.0);
  // (1*2 + 3*4 + 0*4) / 10 = 1.4
  EXPECT_DOUBLE_EQ(m.mean(10.0), 1.4);
}

TEST(TimeWeightedMean, NonZeroStart) {
  TimeWeightedMean m(100.0);
  m.update(100.0, 2.0);
  m.update(105.0, 4.0);
  EXPECT_DOUBLE_EQ(m.mean(110.0), 3.0);
}

TEST(TimeWeightedMean, TimeBackwardsThrows) {
  TimeWeightedMean m;
  m.update(5.0, 1.0);
  EXPECT_THROW(m.update(4.0, 2.0), InvariantViolation);
}

TEST(TimeWeightedMean, CurrentValueTracksLastUpdate) {
  TimeWeightedMean m;
  m.update(1.0, 0.25);
  EXPECT_DOUBLE_EQ(m.currentValue(), 0.25);
}

TEST(Histogram, CountsAndPercentiles) {
  Histogram h(0.0, 10.0, 10);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i % 10) + 0.5);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.percentile(0.5), 4.5, 1.0);
  EXPECT_NEAR(h.percentile(1.0), 9.5, 1.0);
}

TEST(Histogram, OutOfRangeClampsToEdgeBins) {
  Histogram h(0.0, 10.0, 10);
  h.add(-5.0);
  h.add(100.0);
  EXPECT_EQ(h.binCount(0), 1u);
  EXPECT_EQ(h.binCount(9), 1u);
}

TEST(Histogram, EmptyPercentileIsZero) {
  Histogram h(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);
}

TEST(TimeSeries, RecordsPoints) {
  TimeSeries s;
  s.record(1.0, 10.0);
  s.record(2.0, 20.0);
  ASSERT_EQ(s.points().size(), 2u);
  EXPECT_DOUBLE_EQ(s.points()[1].value, 20.0);
}

TEST(TimeSeries, ResampleShrinksEvenly) {
  TimeSeries s;
  for (int i = 0; i < 100; ++i) s.record(static_cast<double>(i), static_cast<double>(i));
  const auto pts = s.resampled(5);
  ASSERT_EQ(pts.size(), 5u);
  EXPECT_DOUBLE_EQ(pts.front().time, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().time, 99.0);
}

TEST(TimeSeries, ResampleNoopWhenSmall) {
  TimeSeries s;
  s.record(1.0, 1.0);
  EXPECT_EQ(s.resampled(10).size(), 1u);
}

TEST(Ratio, EmptyDenominatorIsZeroNotNan) {
  EXPECT_DOUBLE_EQ(ratio(3.0, 4.0), 0.75);
  EXPECT_DOUBLE_EQ(ratio(3.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ratio(0.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(ratio(std::size_t{9}, std::size_t{3}), 3.0);
  EXPECT_DOUBLE_EQ(ratio(std::size_t{9}, std::size_t{0}), 0.0);
}

}  // namespace
}  // namespace dtncache::sim
