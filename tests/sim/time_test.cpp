#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace dtncache::sim {
namespace {

TEST(Time, UnitHelpers) {
  EXPECT_DOUBLE_EQ(seconds(42.0), 42.0);
  EXPECT_DOUBLE_EQ(minutes(2.0), 120.0);
  EXPECT_DOUBLE_EQ(hours(1.5), 5400.0);
  EXPECT_DOUBLE_EQ(days(2.0), 172800.0);
}

TEST(Time, Conversions) {
  EXPECT_DOUBLE_EQ(toHours(hours(7.25)), 7.25);
  EXPECT_DOUBLE_EQ(toDays(days(3.5)), 3.5);
  EXPECT_DOUBLE_EQ(toDays(hours(12.0)), 0.5);
}

TEST(Time, CompositionIsExact) {
  EXPECT_DOUBLE_EQ(days(1.0), hours(24.0));
  EXPECT_DOUBLE_EQ(hours(1.0), minutes(60.0));
  EXPECT_DOUBLE_EQ(minutes(1.0), seconds(60.0));
}

TEST(Time, NeverSentinelIsNegative) {
  EXPECT_LT(kNever, 0.0);
}

}  // namespace
}  // namespace dtncache::sim
