#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace dtncache::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator s;
  EXPECT_DOUBLE_EQ(s.now(), 0.0);
}

TEST(Simulator, RunAdvancesClockToEventTimes) {
  Simulator s;
  std::vector<SimTime> seen;
  s.scheduleAt(5.0, [&](SimTime t) { seen.push_back(t); });
  s.scheduleAfter(2.0, [&](SimTime t) { seen.push_back(t); });
  s.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{2.0, 5.0}));
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Simulator, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator s;
  int fired = 0;
  s.scheduleAt(1.0, [&](SimTime) { ++fired; });
  s.scheduleAt(10.0, [&](SimTime) { ++fired; });
  s.runUntil(5.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
  EXPECT_EQ(s.pendingEvents(), 1u);
  s.runUntil(20.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(s.now(), 20.0);
}

TEST(Simulator, EventsCanScheduleFollowUps) {
  Simulator s;
  std::vector<SimTime> seen;
  s.scheduleAt(1.0, [&](SimTime t) {
    seen.push_back(t);
    s.scheduleAfter(1.5, [&](SimTime t2) { seen.push_back(t2); });
  });
  s.run();
  EXPECT_EQ(seen, (std::vector<SimTime>{1.0, 2.5}));
}

TEST(Simulator, ScheduleAtPastThrows) {
  Simulator s;
  s.scheduleAt(3.0, [](SimTime) {});
  s.run();
  EXPECT_THROW(s.scheduleAt(2.0, [](SimTime) {}), InvariantViolation);
}

TEST(Simulator, NegativeDelayThrows) {
  Simulator s;
  EXPECT_THROW(s.scheduleAfter(-1.0, [](SimTime) {}), InvariantViolation);
}

TEST(Simulator, CancelSingleEvent) {
  Simulator s;
  int fired = 0;
  const EventId id = s.scheduleAt(1.0, [&](SimTime) { ++fired; });
  s.cancel(id);
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(Simulator, PeriodicFiresAtFixedCadence) {
  Simulator s;
  std::vector<SimTime> seen;
  s.schedulePeriodic(2.0, [&](SimTime t) { seen.push_back(t); });
  s.runUntil(7.0);
  EXPECT_EQ(seen, (std::vector<SimTime>{2.0, 4.0, 6.0}));
}

TEST(Simulator, PeriodicHonorsPhase) {
  Simulator s;
  std::vector<SimTime> seen;
  s.schedulePeriodic(3.0, [&](SimTime t) { seen.push_back(t); }, /*phase=*/0.5);
  s.runUntil(7.0);
  EXPECT_EQ(seen, (std::vector<SimTime>{0.5, 3.5, 6.5}));
}

TEST(Simulator, PeriodicCancelStopsSeries) {
  Simulator s;
  int count = 0;
  const EventId id = s.schedulePeriodic(1.0, [&](SimTime) { ++count; });
  s.scheduleAt(3.5, [&](SimTime) { s.cancel(id); });
  s.runUntil(10.0);
  EXPECT_EQ(count, 3);  // fired at 1, 2, 3
}

TEST(Simulator, PeriodicCanCancelItselfFromCallback) {
  Simulator s;
  int count = 0;
  EventId id = 0;
  id = s.schedulePeriodic(1.0, [&](SimTime) {
    if (++count == 2) s.cancel(id);
  });
  s.runUntil(10.0);
  EXPECT_EQ(count, 2);
}

TEST(Simulator, StopInterruptsRun) {
  Simulator s;
  int fired = 0;
  s.scheduleAt(1.0, [&](SimTime) {
    ++fired;
    s.stop();
  });
  s.scheduleAt(2.0, [&](SimTime) { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(s.stopped());
}

TEST(Simulator, ClearPendingDropsEventsKeepsClock) {
  Simulator s;
  s.scheduleAt(1.0, [](SimTime) {});
  s.runUntil(2.0);
  s.scheduleAt(5.0, [](SimTime) { FAIL() << "should have been cleared"; });
  s.clearPending();
  EXPECT_EQ(s.pendingEvents(), 0u);
  EXPECT_DOUBLE_EQ(s.now(), 2.0);
  s.run();
}

}  // namespace
}  // namespace dtncache::sim
