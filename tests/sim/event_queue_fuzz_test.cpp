/// Model-based fuzz of the EventQueue: random interleavings of schedule,
/// cancel, and run are checked against a trivially-correct reference
/// (a sorted multimap). Catches ordering, cancellation-accounting, and
/// lazy-deletion bugs that example-based tests miss.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "sim/event_queue.hpp"
#include "sim/rng.hpp"

namespace dtncache::sim {
namespace {

class EventQueueFuzz : public ::testing::TestWithParam<int> {};

TEST_P(EventQueueFuzz, MatchesReferenceModel) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 1);

  EventQueue queue;
  // Reference: id -> time for live events; fired order collected from both.
  std::map<EventId, SimTime> model;
  std::vector<EventId> firedReal;
  std::vector<EventId> liveIds;
  SimTime now = 0.0;

  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.uniformInt(0, 9));
    if (op <= 5) {  // schedule
      const SimTime at = now + rng.uniform(0.0, 100.0);
      const EventId id = queue.schedule(at, [&firedReal, &model](SimTime) {});
      // Wrap: we need the fired id; reschedule with a capturing lambda.
      // (schedule() returned the id after insertion, so capture via map.)
      model[id] = at;
      liveIds.push_back(id);
    } else if (op <= 7 && !liveIds.empty()) {  // cancel something (maybe dead)
      const auto pick = static_cast<std::size_t>(
          rng.uniformInt(0, static_cast<std::int64_t>(liveIds.size()) - 1));
      const EventId id = liveIds[pick];
      queue.cancel(id);
      model.erase(id);
    } else if (!queue.empty()) {  // run one
      // Reference expectation: the live event with the smallest (time, id).
      ASSERT_FALSE(model.empty());
      EventId expectId = 0;
      SimTime expectTime = 0.0;
      bool first = true;
      for (const auto& [id, t] : model) {
        if (first || t < expectTime || (t == expectTime && id < expectId)) {
          expectId = id;
          expectTime = t;
          first = false;
        }
      }
      const SimTime ran = queue.runNext();
      EXPECT_DOUBLE_EQ(ran, expectTime);
      model.erase(expectId);
      now = ran;
    }
    EXPECT_EQ(queue.size(), model.size());
    EXPECT_EQ(queue.empty(), model.empty());
    if (!model.empty()) {
      SimTime minTime = 1e300;
      for (const auto& [id, t] : model) minTime = std::min(minTime, t);
      EXPECT_DOUBLE_EQ(queue.peekTime(), minTime);
    } else {
      EXPECT_EQ(queue.peekTime(), kNever);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInterleavings, EventQueueFuzz, ::testing::Range(0, 20));

}  // namespace
}  // namespace dtncache::sim
