#include "cache/allocation.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "sim/assert.hpp"
#include "sim/rng.hpp"

namespace dtncache::cache {
namespace {

std::vector<double> zipfWeights(std::size_t n, double s) {
  sim::ZipfSampler z(n, s);
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) w[i] = z.probability(i);
  return w;
}

TEST(Allocation, UniformSplitsEvenly) {
  const auto out = allocateCacheSlots(zipfWeights(5, 1.0), 25, 1, 20,
                                      AllocationPolicy::kUniform);
  for (std::size_t r : out) EXPECT_EQ(r, 5u);
}

TEST(Allocation, SumAlwaysExact) {
  for (const auto policy : {AllocationPolicy::kUniform, AllocationPolicy::kProportional,
                            AllocationPolicy::kSqrt}) {
    const auto out = allocateCacheSlots(zipfWeights(7, 0.9), 53, 1, 30, policy);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}), 53u)
        << allocationName(policy);
  }
}

TEST(Allocation, ProportionalFavorsHotItems) {
  const auto out = allocateCacheSlots(zipfWeights(6, 1.2), 60, 1, 60,
                                      AllocationPolicy::kProportional);
  for (std::size_t i = 1; i < out.size(); ++i) EXPECT_GE(out[i - 1], out[i]);
  EXPECT_GT(out.front(), out.back() * 2);
}

TEST(Allocation, SqrtIsBetweenUniformAndProportional) {
  const auto w = zipfWeights(6, 1.4);
  const auto uni = allocateCacheSlots(w, 60, 1, 60, AllocationPolicy::kUniform);
  const auto sq = allocateCacheSlots(w, 60, 1, 60, AllocationPolicy::kSqrt);
  const auto prop = allocateCacheSlots(w, 60, 1, 60, AllocationPolicy::kProportional);
  // The hottest item: uniform ≤ sqrt ≤ proportional.
  EXPECT_LE(uni[0], sq[0]);
  EXPECT_LE(sq[0], prop[0]);
  // The coldest item: the reverse.
  EXPECT_GE(uni[5], sq[5]);
  EXPECT_GE(sq[5], prop[5]);
}

TEST(Allocation, MinAndMaxBoundsRespected) {
  const auto out = allocateCacheSlots(zipfWeights(8, 2.0), 40, 2, 10,
                                      AllocationPolicy::kProportional);
  for (std::size_t r : out) {
    EXPECT_GE(r, 2u);
    EXPECT_LE(r, 10u);
  }
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}), 40u);
}

TEST(Allocation, ExtremeSkewClampsAtMaxAndRedistributes) {
  std::vector<double> w{1000.0, 1.0, 1.0, 1.0};
  const auto out = allocateCacheSlots(w, 20, 1, 8, AllocationPolicy::kProportional);
  EXPECT_EQ(out[0], 8u);  // clamped
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}), 20u);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_GE(out[i], 1u);
}

TEST(Allocation, InfeasibleBudgetThrows) {
  const auto w = zipfWeights(4, 1.0);
  EXPECT_THROW(allocateCacheSlots(w, 3, 1, 10, AllocationPolicy::kUniform),
               InvariantViolation);
  EXPECT_THROW(allocateCacheSlots(w, 100, 1, 10, AllocationPolicy::kUniform),
               InvariantViolation);
}

TEST(Allocation, NonPositiveWeightThrows) {
  EXPECT_THROW(
      allocateCacheSlots({0.5, 0.0}, 4, 1, 4, AllocationPolicy::kProportional),
      InvariantViolation);
}

TEST(Allocation, Deterministic) {
  const auto w = zipfWeights(9, 0.8);
  const auto a = allocateCacheSlots(w, 71, 2, 20, AllocationPolicy::kSqrt);
  const auto b = allocateCacheSlots(w, 71, 2, 20, AllocationPolicy::kSqrt);
  EXPECT_EQ(a, b);
}

/// Property sweep over random weight vectors and budgets.
class AllocationProperty : public ::testing::TestWithParam<int> {};

TEST_P(AllocationProperty, ExactFeasibleMonotone) {
  sim::Rng rng(static_cast<std::uint64_t>(GetParam()) * 37 + 11);
  const std::size_t n = 2 + GetParam() % 12;
  std::vector<double> w(n);
  for (auto& x : w) x = rng.uniform(0.01, 10.0);
  const std::size_t minPer = 1 + GetParam() % 3;
  const std::size_t maxPer = minPer + 1 + GetParam() % 10;
  const std::size_t total = static_cast<std::size_t>(
      rng.uniformInt(static_cast<std::int64_t>(n * minPer),
                     static_cast<std::int64_t>(n * maxPer)));
  for (const auto policy : {AllocationPolicy::kUniform, AllocationPolicy::kProportional,
                            AllocationPolicy::kSqrt}) {
    const auto out = allocateCacheSlots(w, total, minPer, maxPer, policy);
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), std::size_t{0}), total);
    for (std::size_t r : out) {
      EXPECT_GE(r, minPer);
      EXPECT_LE(r, maxPer);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomBudgets, AllocationProperty, ::testing::Range(0, 30));

}  // namespace
}  // namespace dtncache::cache
