/// Asserts the zero-allocation steady-state contract of the contact data
/// path. In DTNCACHE_ALLOC_HOOK builds, global new/delete count every
/// allocation and CooperativeCache accumulates the allocations observed
/// inside handleContact into the `cache.hot_path.allocs` counter; after a
/// warm-up phase (scratch buffers grown, pools sized, estimator populated)
/// further contacts must not allocate at all. In normal builds the hook
/// compiles to nothing — these tests then verify the counter is NOT
/// registered, so result-sink counter columns are byte-identical with and
/// without the observability wiring.

#include <gtest/gtest.h>

#include "core/hierarchical_scheme.hpp"
#include "data/source.hpp"
#include "net/network.hpp"
#include "obs/alloc_hook.hpp"
#include "obs/registry.hpp"
#include "sim/simulator.hpp"
#include "trace/generators.hpp"

namespace dtncache::cache {
namespace {

/// Full stack over a homogeneous trace, configured so steady state is
/// genuinely quiescent: no queries, no version bumps inside the horizon,
/// and no relay injection (relay budget keys grow with each new version by
/// design, which is amortized growth, not steady state).
struct Rig {
  Rig()
      : world(trace::generate(trace::homogeneousConfig(12, 6.0, sim::days(5), 7))),
        catalog(makeCatalog()),
        estimator(12, trace::EstimatorConfig{}, 0.0),
        network(simulator, world.trace),
        collector(catalog, 0.0),
        coop(simulator, network, catalog, estimator, collector, world.rates,
             cacheConfig()),
        scheme(schemeConfig(), &world.rates) {
    coop.setObservability(nullptr, &registry);
    sources = std::make_unique<data::SourceProcess>(simulator, catalog, sim::days(5));
    coop.setScheme(&scheme);
    coop.start(*sources, nullptr, sim::days(5));
  }

  static data::Catalog makeCatalog() {
    data::CatalogConfig cfg;
    cfg.itemCount = 3;
    cfg.nodeCount = 12;
    cfg.refreshPeriod = sim::days(30);  // no bumps within the horizon
    return data::makeUniformCatalog(cfg);
  }
  static CoopCacheConfig cacheConfig() {
    CoopCacheConfig c;
    c.cachingNodesPerItem = 5;
    return c;
  }
  static core::HierarchicalConfig schemeConfig() {
    core::HierarchicalConfig c;
    c.useOracleRates = true;
    c.relayAssisted = false;
    c.maintenance = core::MaintenanceMode::kStatic;
    return c;
  }

  std::uint64_t hotPathAllocs() const {
    for (const auto& [name, value] : registry.counterSnapshot())
      if (name == "cache.hot_path.allocs") return value;
    return 0;
  }
  bool counterRegistered() const {
    for (const auto& [name, value] : registry.counterSnapshot())
      if (name == "cache.hot_path.allocs") return true;
    return false;
  }

  trace::SyntheticTrace world;
  sim::Simulator simulator;
  data::Catalog catalog;
  trace::ContactRateEstimator estimator;
  net::Network network;
  metrics::MetricsCollector collector;
  obs::Registry registry;
  CooperativeCache coop;
  core::HierarchicalRefreshScheme scheme;
  std::unique_ptr<data::SourceProcess> sources;
};

TEST(AllocHook, CounterRegisteredOnlyInHookBuilds) {
  Rig rig;
  EXPECT_EQ(rig.counterRegistered(), obs::allocHookEnabled());
  if (!obs::allocHookEnabled()) {
    // Normal builds must observe nothing — the hook must be free.
    EXPECT_EQ(obs::threadAllocCount(), 0u);
  }
}

TEST(AllocHook, SteadyStateContactsDoNotAllocate) {
  if (!obs::allocHookEnabled())
    GTEST_SKIP() << "build with -DDTNCACHE_ALLOC_HOOK=ON to assert the contract";

  Rig rig;
  // Warm-up: scratch buffers, store slots, and estimator state all reach
  // their steady footprint within the first day of contacts.
  rig.simulator.runUntil(sim::days(1));
  const std::uint64_t afterWarmup = rig.hotPathAllocs();

  rig.simulator.runUntil(sim::days(5));
  const std::uint64_t afterSteady = rig.hotPathAllocs();
  EXPECT_EQ(afterSteady - afterWarmup, 0u)
      << "steady-state contacts allocated " << (afterSteady - afterWarmup)
      << " times";
  // Sanity: the window actually replayed contacts.
  EXPECT_GT(rig.world.trace.contacts().size(), 100u);
}

TEST(AllocHook, WarmMaintenanceTickDoesNotAllocate) {
  if (!obs::allocHookEnabled())
    GTEST_SKIP() << "build with -DDTNCACHE_ALLOC_HOOK=ON to assert the contract";

  // The steady-state maintenance tick is snapshot refresh + NCL change
  // detection + a plan-cache probe per item. Once the bookkeeping is warm
  // (snapshot primed, centrality cached, plans stored), a quiescent tick —
  // no dirty pairs, stable EWMA estimates — must allocate nothing.
  constexpr NodeId kNodes = 24;
  trace::EstimatorConfig estCfg;
  estCfg.mode = trace::EstimatorMode::kEwma;
  trace::ContactRateEstimator estimator(kNodes, estCfg, 0.0);
  for (NodeId i = 0; i < kNodes; ++i)
    for (NodeId j = i + 1; j < kNodes; ++j) {
      // Two contacts per pair: every EWMA estimate has an interval and is
      // stable in `now` — the quiescent regime skips are made of.
      estimator.recordContact(i, j, 5.0 * (i + j));
      estimator.recordContact(i, j, 5.0 * (i + j) + 40.0 * (j - i));
    }

  trace::RateMatrix snapshot;
  CentralityState centrality;
  core::PlanCache plans;
  plans.resize(4);
  std::vector<NodeId> changed;
  changed.reserve(kNodes);

  // Warm everything once: prime the snapshot, the centrality cache, and
  // store a keyed plan per item.
  double now = sim::days(1);
  estimator.snapshotInto(snapshot, now, &changed);
  selectNcls(centrality, snapshot, sim::hours(1), 4, changed);
  const core::PlanCache::Key key{1, 1, sim::hours(6)};
  for (std::uint32_t item = 0; item < 4; ++item) {
    core::HierarchyConfig hcfg;
    hcfg.fanoutBound = 6;
    auto h = core::RefreshHierarchy::build(
        0, {}, [&](NodeId a, NodeId b) { return snapshot.rate(a, b); },
        sim::hours(6), hcfg);
    for (NodeId n = 1; n < 6; ++n) h.addMember(n, 0, 6);
    plans.store(item, key,
                core::planReplication(h, [&](NodeId a, NodeId b) { return snapshot.rate(a, b); },
                                      sim::hours(6), core::ReplicationConfig{}));
  }

  const std::uint64_t before = obs::threadAllocCount();
  std::size_t skippedTicks = 0;
  for (int tick = 0; tick < 200; ++tick) {
    now += sim::minutes(10);
    const auto stats = estimator.snapshotInto(snapshot, now, &changed);
    const bool nclMoved = selectNcls(centrality, snapshot, sim::hours(1), 4, changed);
    std::size_t hits = 0;
    for (std::uint32_t item = 0; item < 4; ++item)
      if (plans.find(item, key) != nullptr) ++hits;
    if (stats.changedPairs == 0 && !nclMoved && hits == 4) ++skippedTicks;
  }
  EXPECT_EQ(obs::threadAllocCount() - before, 0u)
      << "warm maintenance ticks allocated";
  EXPECT_EQ(skippedTicks, 200u);  // the loop really ran the quiescent path
}

}  // namespace
}  // namespace dtncache::cache
