/// Randomized equivalence suite: the flat slot-vector CacheStore against a
/// naive reference built on std::unordered_map plus an explicit recency
/// list. The reference encodes the documented contract directly — insert
/// links most-recently-used, upgrades never touch recency, eviction pops
/// the least-recently-used end, byte accounting follows entry sizes — so
/// any divergence in result kinds, eviction victims (including their
/// order), entry fields, or occupancy is a bug in the flat store's index,
/// free list, or intrusive LRU threading.

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <random>
#include <unordered_map>
#include <vector>

#include "cache/cache_store.hpp"

namespace dtncache::cache {
namespace {

/// The naive model: hash map for storage, vector of ids in recency order
/// (front = least recently used, back = most recently used).
class ReferenceStore {
 public:
  explicit ReferenceStore(std::size_t capacityBytes) : capacity_(capacityBytes) {}

  InsertResult insert(data::ItemId item, data::Version version, std::uint32_t sizeBytes,
                      sim::SimTime now) {
    InsertResult result;
    if (sizeBytes > capacity_) {
      result.kind = InsertResult::Kind::kRejected;
      return result;
    }
    if (auto it = map_.find(item); it != map_.end()) {
      CacheEntry& e = it->second;
      if (e.version >= version) {
        result.kind = InsertResult::Kind::kAlreadyCurrent;
        return result;
      }
      result.kind = InsertResult::Kind::kUpgraded;
      result.previousVersion = e.version;
      used_ -= e.sizeBytes;
      used_ += sizeBytes;
      e.version = version;
      e.sizeBytes = sizeBytes;
      e.receivedAt = now;
      while (used_ > capacity_) evictLru(result.evicted);
      return result;
    }
    while (used_ + sizeBytes > capacity_) evictLru(result.evicted);
    CacheEntry e;
    e.item = item;
    e.version = version;
    e.sizeBytes = sizeBytes;
    e.receivedAt = now;
    e.lastAccess = now;
    map_[item] = e;
    order_.push_back(item);
    used_ += sizeBytes;
    result.kind = InsertResult::Kind::kInserted;
    return result;
  }

  const CacheEntry* find(data::ItemId item) const {
    const auto it = map_.find(item);
    return it == map_.end() ? nullptr : &it->second;
  }

  void recordAccess(data::ItemId item, sim::SimTime now) {
    const auto it = map_.find(item);
    if (it == map_.end()) return;
    it->second.lastAccess = now;
    ++it->second.accessCount;
    moveToBack(item);
  }

  std::optional<CacheEntry> remove(data::ItemId item) {
    const auto it = map_.find(item);
    if (it == map_.end()) return std::nullopt;
    const CacheEntry e = it->second;
    used_ -= e.sizeBytes;
    map_.erase(it);
    order_.erase(std::find(order_.begin(), order_.end(), item));
    return e;
  }

  std::size_t usedBytes() const { return used_; }
  std::size_t size() const { return map_.size(); }

  std::vector<CacheEntry> entriesByItem() const {
    std::vector<CacheEntry> out;
    for (const auto& [id, e] : map_) out.push_back(e);
    std::sort(out.begin(), out.end(),
              [](const CacheEntry& a, const CacheEntry& b) { return a.item < b.item; });
    return out;
  }

 private:
  void moveToBack(data::ItemId item) {
    if (!order_.empty() && order_.back() == item) return;
    order_.erase(std::find(order_.begin(), order_.end(), item));
    order_.push_back(item);
  }

  void evictLru(std::vector<CacheEntry>& out) {
    ASSERT_FALSE(order_.empty());
    const data::ItemId victim = order_.front();
    order_.erase(order_.begin());
    out.push_back(map_.at(victim));
    used_ -= map_.at(victim).sizeBytes;
    map_.erase(victim);
  }

  std::size_t capacity_;
  std::size_t used_ = 0;
  std::unordered_map<data::ItemId, CacheEntry> map_;
  std::vector<data::ItemId> order_;
};

void expectSameEntry(const CacheEntry& a, const CacheEntry& b) {
  EXPECT_EQ(a.item, b.item);
  EXPECT_EQ(a.version, b.version);
  EXPECT_EQ(a.sizeBytes, b.sizeBytes);
  EXPECT_DOUBLE_EQ(a.receivedAt, b.receivedAt);
  EXPECT_DOUBLE_EQ(a.lastAccess, b.lastAccess);
  EXPECT_EQ(a.accessCount, b.accessCount);
}

void expectSameState(const CacheStore& store, const ReferenceStore& ref) {
  ASSERT_EQ(store.size(), ref.size());
  ASSERT_EQ(store.usedBytes(), ref.usedBytes());
  const auto entries = store.entries();
  const auto refEntries = ref.entriesByItem();
  ASSERT_EQ(entries.size(), refEntries.size());
  for (std::size_t i = 0; i < entries.size(); ++i)
    expectSameEntry(*entries[i], refEntries[i]);
}

/// Drive both stores through the same randomized op stream and compare
/// after every operation. Small capacity and item universe force constant
/// collisions, upgrades, evictions and slot reuse.
void runEquivalence(std::uint64_t seed, std::size_t ops) {
  constexpr std::size_t kCapacity = 1200;
  constexpr std::uint64_t kItems = 16;
  CacheStore store(kCapacity);
  ReferenceStore ref(kCapacity);
  std::mt19937_64 rng(seed);
  sim::SimTime now = 0.0;

  for (std::size_t op = 0; op < ops; ++op) {
    now += static_cast<double>(rng() % 3);  // nondecreasing, with ties
    const auto item = static_cast<data::ItemId>(rng() % kItems);
    switch (rng() % 10) {
      case 0: case 1: case 2: case 3: {  // insert / upgrade
        const auto version = static_cast<data::Version>(rng() % 6);
        // Occasionally oversized to exercise rejection.
        const auto size = static_cast<std::uint32_t>(
            rng() % 100 == 0 ? kCapacity + 1 : 50 + rng() % 350);
        const InsertResult got = store.insert(item, version, size, now);
        const InsertResult want = ref.insert(item, version, size, now);
        ASSERT_EQ(got.kind, want.kind);
        ASSERT_EQ(got.previousVersion, want.previousVersion);
        ASSERT_EQ(got.evicted.size(), want.evicted.size());
        for (std::size_t i = 0; i < got.evicted.size(); ++i)
          expectSameEntry(got.evicted[i], want.evicted[i]);
        break;
      }
      case 4: case 5: case 6: {  // find
        const CacheEntry* got = store.find(item);
        const CacheEntry* want = ref.find(item);
        ASSERT_EQ(got == nullptr, want == nullptr);
        if (got != nullptr) expectSameEntry(*got, *want);
        break;
      }
      case 7: case 8: {  // recordAccess
        store.recordAccess(item, now);
        ref.recordAccess(item, now);
        break;
      }
      case 9: {  // remove
        const auto got = store.remove(item);
        const auto want = ref.remove(item);
        ASSERT_EQ(got.has_value(), want.has_value());
        if (got.has_value()) expectSameEntry(*got, *want);
        break;
      }
    }
    expectSameState(store, ref);
  }
}

TEST(CacheStoreEquivalence, RandomizedOpsSeed1) { runEquivalence(1, 4000); }
TEST(CacheStoreEquivalence, RandomizedOpsSeed2) { runEquivalence(2, 4000); }
TEST(CacheStoreEquivalence, RandomizedOpsSeed3) { runEquivalence(3, 4000); }

TEST(CacheStoreEquivalence, TinyCapacityChurn) {
  // Capacity of ~2 entries: every insert evicts; free-list recycling and
  // head/tail maintenance run continuously.
  CacheStore store(300);
  ReferenceStore ref(300);
  std::mt19937_64 rng(99);
  sim::SimTime now = 0.0;
  for (std::size_t op = 0; op < 2000; ++op) {
    now += 1.0;
    const auto item = static_cast<data::ItemId>(rng() % 8);
    const auto got = store.insert(item, static_cast<data::Version>(op), 140, now);
    const auto want = ref.insert(item, static_cast<data::Version>(op), 140, now);
    ASSERT_EQ(got.kind, want.kind);
    ASSERT_EQ(got.evicted.size(), want.evicted.size());
    for (std::size_t i = 0; i < got.evicted.size(); ++i)
      expectSameEntry(got.evicted[i], want.evicted[i]);
    expectSameState(store, ref);
  }
}

}  // namespace
}  // namespace dtncache::cache
