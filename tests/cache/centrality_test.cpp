#include "cache/centrality.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/rng.hpp"

namespace dtncache::cache {
namespace {

/// Star topology: node 0 meets everyone, the rest only meet node 0.
trace::RateMatrix star(std::size_t n, double hubRate) {
  trace::RateMatrix m(n);
  for (NodeId j = 1; j < n; ++j) m.setRate(0, j, hubRate);
  return m;
}

TEST(Centrality, HubHasHighestCapability) {
  const auto m = star(10, 0.01);
  const auto cap = contactCapability(m, 100.0);
  for (NodeId j = 1; j < 10; ++j) EXPECT_GT(cap[0], cap[j]);
}

TEST(Centrality, CapabilityIsMeanMeetingProbability) {
  trace::RateMatrix m(3);
  m.setRate(0, 1, 0.01);
  m.setRate(0, 2, 0.02);
  const auto cap = contactCapability(m, 100.0);
  const double expected =
      (trace::contactProbability(0.01, 100.0) + trace::contactProbability(0.02, 100.0)) / 2.0;
  EXPECT_NEAR(cap[0], expected, 1e-12);
}

TEST(Centrality, TopCapabilityOrdersByMetric) {
  trace::RateMatrix m(4);
  m.setRate(0, 1, 0.001);
  m.setRate(2, 0, 0.05);
  m.setRate(2, 1, 0.05);
  m.setRate(2, 3, 0.05);
  const auto top = selectTopCapability(m, 100.0, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2u);
}

TEST(Centrality, SelectNclsReturnsRequestedCount) {
  const auto m = star(10, 0.01);
  EXPECT_EQ(selectNcls(m, 100.0, 3).size(), 3u);
  EXPECT_EQ(selectNcls(m, 100.0, 20).size(), 10u);  // clamped to n
}

TEST(Centrality, SelectNclsPicksHubFirst) {
  const auto m = star(10, 0.01);
  const auto ncls = selectNcls(m, 100.0, 4);
  EXPECT_EQ(ncls[0], 0u);
}

TEST(Centrality, GreedyAvoidsRedundantCoverage) {
  // Two communities {0,1,2} and {3,4,5}; 0 and 1 both cover community A
  // fully, 3 covers community B. Raw top-2 would pick 0 and 1 (both high
  // capability); greedy must pick one node from each community.
  trace::RateMatrix m(6);
  const double hi = 1.0;  // near-certain contact within the window
  m.setRate(0, 1, hi);
  m.setRate(0, 2, hi);
  m.setRate(1, 2, hi * 0.99);
  m.setRate(3, 4, hi * 0.5);
  m.setRate(3, 5, hi * 0.5);
  const auto ncls = selectNcls(m, 10.0, 2);
  ASSERT_EQ(ncls.size(), 2u);
  const bool coversA = ncls[0] <= 2 || ncls[1] <= 2;
  const bool coversB = ncls[0] >= 3 || ncls[1] >= 3;
  EXPECT_TRUE(coversA);
  EXPECT_TRUE(coversB);
}

TEST(Centrality, DeterministicUnderTies) {
  trace::RateMatrix m(5);  // all-zero rates: every node ties
  const auto a = selectNcls(m, 100.0, 3);
  const auto b = selectNcls(m, 100.0, 3);
  EXPECT_EQ(a, b);
}

// ---- Incremental CentralityState -------------------------------------------

trace::RateMatrix randomMatrix(std::size_t n, sim::Rng& rng) {
  trace::RateMatrix m(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.6)) m.setRate(i, j, rng.uniform(0.0, 0.05));
  return m;
}

TEST(CentralityState, IncrementalMatchesBatchUnderRandomRowUpdates) {
  // Mutate random rows between refreshes; the incrementally maintained
  // capability vector and NCL set must stay bit-identical to the batch
  // functions at every step — the equivalence the maintenance tick's
  // NCL change-detection rests on.
  constexpr std::size_t kNodes = 16;
  constexpr double kWindow = 600.0;
  constexpr std::size_t kK = 4;
  sim::Rng rng(42);
  auto m = randomMatrix(kNodes, rng);
  CentralityState state;
  std::vector<NodeId> changed;
  bool moved = selectNcls(state, m, kWindow, kK, changed);
  EXPECT_TRUE(moved);  // first call on an unprimed state always reports true
  for (int round = 0; round < 40; ++round) {
    changed.clear();
    const int rows = static_cast<int>(rng.uniformInt(0, 3));
    for (int r = 0; r < rows; ++r) {
      const NodeId i = static_cast<NodeId>(rng.uniformInt(0, kNodes - 1));
      NodeId j = static_cast<NodeId>(rng.uniformInt(0, kNodes - 2));
      if (j >= i) ++j;
      m.setRate(i, j, rng.uniform(0.0, 0.05));
      changed.push_back(i);
      changed.push_back(j);
    }
    std::sort(changed.begin(), changed.end());
    changed.erase(std::unique(changed.begin(), changed.end()), changed.end());

    const auto previous = state.ncls();
    moved = selectNcls(state, m, kWindow, kK, changed);
    const auto batchCap = contactCapability(m, kWindow);
    const auto& incCap = state.capability();
    ASSERT_EQ(incCap.size(), batchCap.size());
    for (std::size_t i = 0; i < batchCap.size(); ++i)
      ASSERT_EQ(incCap[i], batchCap[i]) << "node " << i << " round " << round;
    EXPECT_EQ(state.ncls(), selectNcls(m, kWindow, kK)) << "round " << round;
    EXPECT_EQ(moved, state.ncls() != previous) << "round " << round;
  }
}

TEST(CentralityState, NoChangeShortCircuitReportsStableSet) {
  const auto m = star(10, 0.01);
  CentralityState state;
  std::vector<NodeId> none;
  EXPECT_TRUE(selectNcls(state, m, 100.0, 3, none));
  const auto first = state.ncls();
  // Primed + empty change list: skipped outright, nothing moved.
  EXPECT_FALSE(selectNcls(state, m, 100.0, 3, none));
  EXPECT_EQ(state.ncls(), first);
}

TEST(CentralityState, ParameterChangeForcesFullRederivation) {
  sim::Rng rng(5);
  const auto m = randomMatrix(12, rng);
  CentralityState state;
  std::vector<NodeId> none;
  selectNcls(state, m, 100.0, 3, none);
  // A different window invalidates every cached probability even with an
  // empty change list.
  selectNcls(state, m, 900.0, 3, none);
  EXPECT_EQ(state.ncls(), selectNcls(m, 900.0, 3));
  // Same for a different k...
  selectNcls(state, m, 900.0, 5, none);
  EXPECT_EQ(state.ncls(), selectNcls(m, 900.0, 5));
  // ...and an explicit invalidate() must rebuild to the same answer.
  state.invalidate();
  EXPECT_FALSE(state.primed());
  selectNcls(state, m, 900.0, 5, none);
  EXPECT_EQ(state.ncls(), selectNcls(m, 900.0, 5));
}

TEST(CentralityState, IncrementalCapabilityOverloadMatchesBatch) {
  sim::Rng rng(11);
  auto m = randomMatrix(10, rng);
  CentralityState state;
  std::vector<NodeId> changed;
  const auto& cap = contactCapability(state, m, 200.0, changed);
  EXPECT_EQ(cap, contactCapability(m, 200.0));
  m.setRate(2, 7, 0.04);
  changed = {2, 7};
  const auto& cap2 = contactCapability(state, m, 200.0, changed);
  EXPECT_EQ(cap2, contactCapability(m, 200.0));
}

}  // namespace
}  // namespace dtncache::cache
