#include "cache/centrality.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace dtncache::cache {
namespace {

/// Star topology: node 0 meets everyone, the rest only meet node 0.
trace::RateMatrix star(std::size_t n, double hubRate) {
  trace::RateMatrix m(n);
  for (NodeId j = 1; j < n; ++j) m.setRate(0, j, hubRate);
  return m;
}

TEST(Centrality, HubHasHighestCapability) {
  const auto m = star(10, 0.01);
  const auto cap = contactCapability(m, 100.0);
  for (NodeId j = 1; j < 10; ++j) EXPECT_GT(cap[0], cap[j]);
}

TEST(Centrality, CapabilityIsMeanMeetingProbability) {
  trace::RateMatrix m(3);
  m.setRate(0, 1, 0.01);
  m.setRate(0, 2, 0.02);
  const auto cap = contactCapability(m, 100.0);
  const double expected =
      (trace::contactProbability(0.01, 100.0) + trace::contactProbability(0.02, 100.0)) / 2.0;
  EXPECT_NEAR(cap[0], expected, 1e-12);
}

TEST(Centrality, TopCapabilityOrdersByMetric) {
  trace::RateMatrix m(4);
  m.setRate(0, 1, 0.001);
  m.setRate(2, 0, 0.05);
  m.setRate(2, 1, 0.05);
  m.setRate(2, 3, 0.05);
  const auto top = selectTopCapability(m, 100.0, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2u);
}

TEST(Centrality, SelectNclsReturnsRequestedCount) {
  const auto m = star(10, 0.01);
  EXPECT_EQ(selectNcls(m, 100.0, 3).size(), 3u);
  EXPECT_EQ(selectNcls(m, 100.0, 20).size(), 10u);  // clamped to n
}

TEST(Centrality, SelectNclsPicksHubFirst) {
  const auto m = star(10, 0.01);
  const auto ncls = selectNcls(m, 100.0, 4);
  EXPECT_EQ(ncls[0], 0u);
}

TEST(Centrality, GreedyAvoidsRedundantCoverage) {
  // Two communities {0,1,2} and {3,4,5}; 0 and 1 both cover community A
  // fully, 3 covers community B. Raw top-2 would pick 0 and 1 (both high
  // capability); greedy must pick one node from each community.
  trace::RateMatrix m(6);
  const double hi = 1.0;  // near-certain contact within the window
  m.setRate(0, 1, hi);
  m.setRate(0, 2, hi);
  m.setRate(1, 2, hi * 0.99);
  m.setRate(3, 4, hi * 0.5);
  m.setRate(3, 5, hi * 0.5);
  const auto ncls = selectNcls(m, 10.0, 2);
  ASSERT_EQ(ncls.size(), 2u);
  const bool coversA = ncls[0] <= 2 || ncls[1] <= 2;
  const bool coversB = ncls[0] >= 3 || ncls[1] >= 3;
  EXPECT_TRUE(coversA);
  EXPECT_TRUE(coversB);
}

TEST(Centrality, DeterministicUnderTies) {
  trace::RateMatrix m(5);  // all-zero rates: every node ties
  const auto a = selectNcls(m, 100.0, 3);
  const auto b = selectNcls(m, 100.0, 3);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace dtncache::cache
