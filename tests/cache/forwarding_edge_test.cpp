/// Edge cases of the store-carry-forward engine inside CooperativeCache:
/// hop caps, deadline purging mid-route, copy-budget exhaustion, and
/// buffer pressure. These paths only trigger under adversarial message
/// states, so they get dedicated scenarios rather than relying on the
/// randomized property suite to stumble into them.

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "cache/coop_cache.hpp"
#include "data/source.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace dtncache::cache {
namespace {

/// 5-node rig with a configurable contact schedule. Node 0 is the source
/// of one item; nodes 1 and 2 cache it (their planning rates dominate).
struct Rig {
  explicit Rig(std::vector<trace::Contact> contacts, CoopCacheConfig cacheCfg = makeCache())
      : trace(5, std::move(contacts)),
        catalog(makeCatalog()),
        estimator(5, makeEstimator(), 0.0),
        network(simulator, trace, makeNetwork()),
        collector(catalog, 0.0),
        coop(simulator, network, catalog, estimator, collector, planningRates(), cacheCfg) {
    sources = std::make_unique<data::SourceProcess>(simulator, catalog, 1e6);
    coop.setScheme(&scheme);
    coop.start(*sources, nullptr, 1e6);
  }

  static data::Catalog makeCatalog() {
    data::ItemSpec s;
    s.id = 0;
    s.source = 0;
    s.sizeBytes = 1000;
    s.refreshPeriod = 1e5;
    s.lifetime = 2e5;
    return data::Catalog({s});
  }
  static trace::EstimatorConfig makeEstimator() {
    trace::EstimatorConfig e;
    e.priorRate = 1e-6;  // strangers are still (barely) routable
    return e;
  }
  static net::NetworkConfig makeNetwork() {
    net::NetworkConfig n;
    n.minContactBudgetBytes = 1 << 20;
    return n;
  }
  static CoopCacheConfig makeCache() {
    CoopCacheConfig c;
    c.cachingNodesPerItem = 2;
    return c;
  }
  static trace::RateMatrix planningRates() {
    trace::RateMatrix m(5);
    m.setRate(1, 0, 0.10);
    m.setRate(1, 2, 0.10);
    m.setRate(2, 3, 0.05);
    return m;
  }

  sim::Simulator simulator;
  trace::ContactTrace trace;
  data::Catalog catalog;
  trace::ContactRateEstimator estimator;
  net::Network network;
  metrics::MetricsCollector collector;
  CooperativeCache coop;
  baselines::NoRefreshScheme scheme;
  std::unique_ptr<data::SourceProcess> sources;
};

net::Message makeReply(NodeId dst, std::uint32_t copies, sim::SimTime deadline,
                       std::uint32_t hops = 0) {
  net::Message m;
  m.kind = net::MessageKind::kReply;
  m.item = 0;
  m.version = 0;
  m.dst = dst;
  m.requester = dst;
  m.queryId = 42;
  m.deadline = deadline;
  m.copiesLeft = copies;
  m.hopCount = hops;
  m.payloadBytes = 1000;
  return m;
}

TEST(ForwardingEdge, HopCapStopsRelaying) {
  // Node 3 carries a reply for node 4 already at the hop cap; meeting a
  // better carrier (2, who knows 4 via... nobody knows 4; use 4 directly
  // to prove delivery still works at the cap, then a relay that must not).
  Rig rig({{10.0, 5.0, 2, 3}, {20.0, 5.0, 3, 4}});
  data::Query q;  // register the query so the answer is countable
  q.id = 42;
  q.requester = 4;
  q.item = 0;
  q.issueTime = 1.0;
  q.deadline = 1e5;
  rig.simulator.scheduleAt(1.0, [&](sim::SimTime) {
    rig.collector.queryIssued(q);
    auto m = makeReply(4, 4, 1e5, rig.coop.config().forwarding.maxHops);
    rig.coop.injectMessage(3, m, 1.0);
    // Give node 2 a high estimated rate to 4 so it would qualify as relay.
    for (int i = 0; i < 20; ++i) rig.estimator.recordContact(2, 4, 1.0);
  });
  rig.simulator.runUntil(30.0);
  // At t=10 node 3 met node 2 (a "better carrier") but the hop cap blocked
  // the handoff; at t=20 node 3 met the destination: delivery ignores hops.
  EXPECT_FALSE(rig.coop.bufferOf(2).contains(1));
  const auto r = rig.collector.finalize(30.0, rig.network.transfers());
  EXPECT_EQ(r.queries.answered, 1u);
}

TEST(ForwardingEdge, ExpiredMessagesNeverForwardAndPurgeLazily) {
  Rig rig({{10.0, 5.0, 3, 4}});
  rig.simulator.scheduleAt(1.0, [&](sim::SimTime) {
    rig.coop.injectMessage(3, makeReply(4, 2, /*deadline=*/5.0), 1.0);
  });
  rig.simulator.runUntil(30.0);
  // The carrier's only message died at t=5, so by the t=10 contact the
  // deadline watermark classifies the buffer as dead and the forwarding
  // pass skips it entirely: nothing transfers, and the corpse lingers
  // (invisible to hasLive) until the next mutating touch purges it.
  EXPECT_EQ(rig.coop.bufferOf(3).size(), 1u);
  EXPECT_FALSE(rig.coop.bufferOf(3).hasLive(30.0));
  EXPECT_TRUE(rig.coop.bufferOf(4).empty());
  EXPECT_EQ(rig.network.transfers().of(net::Traffic::kReply).messages, 0u);
  rig.coop.bufferOf(3).purgeExpired(30.0);
  EXPECT_TRUE(rig.coop.bufferOf(3).empty());
}

TEST(ForwardingEdge, SingleCopyMigratesInsteadOfDuplicating) {
  // Node 3 (poor utility) meets node 2 (better utility toward dst 0 — by
  // planning... use estimator contacts). The single copy must move, not split.
  Rig rig({{50.0, 5.0, 2, 3}});
  rig.simulator.scheduleAt(1.0, [&](sim::SimTime) {
    for (int i = 0; i < 10; ++i) rig.estimator.recordContact(2, 0, 1.0 + i * 0.1);
    rig.coop.injectMessage(3, makeReply(/*dst=*/0, /*copies=*/1, 1e5), 1.0);
  });
  rig.simulator.runUntil(60.0);
  EXPECT_TRUE(rig.coop.bufferOf(3).empty());   // migrated away
  EXPECT_EQ(rig.coop.bufferOf(2).size(), 1u);  // exactly one copy lives on
}

TEST(ForwardingEdge, CopyBudgetSplitsAcrossRelays) {
  // Carrier 3 with 4 copies meets two successively better carriers; each
  // handoff halves the remaining budget.
  Rig rig({{50.0, 5.0, 2, 3}, {60.0, 5.0, 1, 3}});
  rig.simulator.scheduleAt(1.0, [&](sim::SimTime) {
    for (int i = 0; i < 10; ++i) rig.estimator.recordContact(2, 0, 1.0 + i * 0.1);
    for (int i = 0; i < 30; ++i) rig.estimator.recordContact(1, 0, 1.0 + i * 0.1);
    rig.coop.injectMessage(3, makeReply(0, 4, 1e5), 1.0);
  });
  rig.simulator.runUntil(100.0);
  // t=50: hand ceil(4/2)=2 to node 2 (keep 2). t=60: node 1 is even better
  // than node 3; hand ceil(2/2)=1 (keep 1).
  ASSERT_EQ(rig.coop.bufferOf(2).size(), 1u);
  EXPECT_EQ(rig.coop.bufferOf(2).front().copiesLeft, 2u);
  ASSERT_EQ(rig.coop.bufferOf(1).size(), 1u);
  EXPECT_EQ(rig.coop.bufferOf(1).front().copiesLeft, 1u);
  ASSERT_EQ(rig.coop.bufferOf(3).size(), 1u);
  EXPECT_EQ(rig.coop.bufferOf(3).front().copiesLeft, 1u);
}

TEST(ForwardingEdge, DuplicateCopyNotReacquired) {
  // Once a node holds message id X, a later contact with another carrier
  // of X must not create a second buffered copy.
  Rig rig({{50.0, 5.0, 2, 3}, {60.0, 5.0, 2, 4}, {70.0, 5.0, 2, 3}});
  rig.simulator.scheduleAt(1.0, [&](sim::SimTime) {
    for (int i = 0; i < 10; ++i) rig.estimator.recordContact(2, 0, 1.0 + i * 0.1);
    auto m = makeReply(0, 8, 1e5);
    m.id = 777;
    rig.coop.injectMessage(3, m, 1.0);
  });
  rig.simulator.runUntil(100.0);
  std::size_t copies = 0;
  for (NodeId n = 0; n < 5; ++n)
    rig.coop.bufferOf(n).forEach([&](const net::Message& m) {
      if (m.id == 777) ++copies;
    });
  EXPECT_LE(copies, 2u);  // carrier + the single relay, never re-handed
}

}  // namespace
}  // namespace dtncache::cache
