/// Cross-module conservation properties of the full cooperative-caching
/// stack, checked over randomized small networks and all schemes.

#include <gtest/gtest.h>

#include "runner/experiment.hpp"

namespace dtncache::cache {
namespace {

struct Arm {
  runner::SchemeKind scheme;
  std::uint64_t seed;
};

class CoopCacheProperty : public ::testing::TestWithParam<int> {
 protected:
  static runner::ExperimentConfig makeConfig(int param) {
    const auto schemes = runner::allSchemes();
    runner::ExperimentConfig c;
    c.trace = trace::homogeneousConfig(
        10 + param % 8, 2.0 + (param % 5), sim::days(4 + param % 6),
        static_cast<std::uint64_t>(param) + 1);
    c.catalog.itemCount = 2 + param % 4;
    c.catalog.refreshPeriod = sim::hours(6 + 3 * (param % 4));
    c.workload.queriesPerNodePerDay = static_cast<double>(param % 3);
    c.workload.queryDeadline = sim::hours(6);
    c.cache.cachingNodesPerItem = 3 + param % 3;
    c.scheme = schemes[static_cast<std::size_t>(param) % schemes.size()];
    c.seed = static_cast<std::uint64_t>(param) * 17 + 3;
    return c;
  }
};

TEST_P(CoopCacheProperty, MetricsObeyConservationLaws) {
  const auto cfg = makeConfig(GetParam());
  const auto out = runner::runExperiment(cfg);
  const auto& r = out.results;
  const auto& q = r.queries;

  // Fractions live in [0, 1].
  for (double f : {r.meanFreshFraction, r.finalFreshFraction, r.meanValidFraction,
                   r.refreshWithinPeriodRatio}) {
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0 + 1e-12);
  }

  // Query accounting: answered ⊇ valid ⊇ ∅, answered ⊇ fresh, ≤ issued.
  EXPECT_LE(q.answered, q.issued);
  EXPECT_LE(q.answeredValid, q.answered);
  EXPECT_LE(q.answeredFresh, q.answered);
  EXPECT_LE(q.localHits, q.answered);
  EXPECT_EQ(q.delay.count(), q.answered);
  if (q.answered > 0) {
    EXPECT_GE(q.delay.min(), 0.0);
  }

  // Copy census: warm start creates exactly the caching sets; copies are
  // never created or destroyed afterwards (ample capacity, no eviction).
  std::size_t expectedCopies = 0;
  for (data::ItemId item = 0; item < cfg.catalog.itemCount; ++item)
    expectedCopies += cfg.cache.cachingNodesPerItem;
  EXPECT_EQ(r.copiesTracked, expectedCopies);

  // Byte accounting: per-category sums equal the total; per-node refresh
  // bytes sum to the refresh category.
  std::uint64_t catBytes = 0;
  std::uint64_t catMsgs = 0;
  for (const auto cat : {net::Traffic::kControl, net::Traffic::kRefresh,
                         net::Traffic::kPlacement, net::Traffic::kQuery,
                         net::Traffic::kReply, net::Traffic::kPull}) {
    catBytes += r.transfers.of(cat).bytes;
    catMsgs += r.transfers.of(cat).messages;
  }
  EXPECT_EQ(catBytes, r.transfers.total().bytes);
  EXPECT_EQ(catMsgs, r.transfers.total().messages);
  std::uint64_t perNodeRefresh = 0;
  for (std::uint64_t b : r.transfers.perNodeRefreshBytes()) perNodeRefresh += b;
  EXPECT_EQ(perNodeRefresh, r.transfers.of(net::Traffic::kRefresh).bytes);

  // Every refresh push the collector saw corresponds to at least one
  // refresh-category or placement-category message (pull responses and
  // reply-installs are refresh/reply traffic).
  if (r.refreshPushes > 0) {
    EXPECT_GT(r.transfers.total().messages, 0u);
  }

  // Freshness time series values are fractions too.
  for (const auto& p : r.freshOverTime.points()) {
    EXPECT_GE(p.value, 0.0);
    EXPECT_LE(p.value, 1.0 + 1e-12);
  }
}

TEST_P(CoopCacheProperty, NoRefreshIsALowerBoundOnFreshness) {
  auto cfg = makeConfig(GetParam());
  const auto out = runner::runExperiment(cfg);
  cfg.scheme = runner::SchemeKind::kNoRefresh;
  const auto none = runner::runExperiment(cfg);
  EXPECT_GE(out.results.meanFreshFraction, none.results.meanFreshFraction - 0.02)
      << out.scheme;
}

INSTANTIATE_TEST_SUITE_P(RandomStacks, CoopCacheProperty, ::testing::Range(0, 21));

}  // namespace
}  // namespace dtncache::cache
