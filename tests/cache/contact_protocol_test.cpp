#include "cache/contact_protocol.hpp"

#include <gtest/gtest.h>

namespace dtncache::cache {
namespace {

TEST(ContactProtocol, WantsVersionIsStrictFreshnessImprovement) {
  EXPECT_TRUE(ContactProtocol::wantsVersion(std::nullopt, 1));
  EXPECT_TRUE(ContactProtocol::wantsVersion(2, 3));
  EXPECT_FALSE(ContactProtocol::wantsVersion(3, 3));  // equal is not news
  EXPECT_FALSE(ContactProtocol::wantsVersion(4, 3));
}

TEST(ContactProtocol, DecidePushOrdersItsChecks) {
  // Non-caching wins over staleness: no speculative pushes to nodes that
  // will not store the item.
  EXPECT_EQ(ContactProtocol::decidePush(std::nullopt, 5, false),
            PushVerdict::kNotCachingNode);
  EXPECT_EQ(ContactProtocol::decidePush(1, 5, false), PushVerdict::kNotCachingNode);

  EXPECT_EQ(ContactProtocol::decidePush(std::nullopt, 1, true), PushVerdict::kSend);
  EXPECT_EQ(ContactProtocol::decidePush(4, 5, true), PushVerdict::kSend);
  EXPECT_EQ(ContactProtocol::decidePush(5, 5, true), PushVerdict::kReceiverCurrent);
  EXPECT_EQ(ContactProtocol::decidePush(6, 5, true), PushVerdict::kReceiverCurrent);
}

TEST(ContactProtocol, HandshakeBytesScaleWithCatalog) {
  EXPECT_EQ(ContactProtocol::handshakeBytes(0, 12), net::kHeaderBytes);
  EXPECT_EQ(ContactProtocol::handshakeBytes(10, 12), net::kHeaderBytes + 120u);
  // Large catalogs must not overflow 32-bit arithmetic.
  EXPECT_EQ(ContactProtocol::handshakeBytes(1u << 28, 16),
            net::kHeaderBytes + (static_cast<std::uint64_t>(1) << 32));
}

TEST(ContactProtocol, PushWireBytesAddHeaderToPayload) {
  EXPECT_EQ(ContactProtocol::pushWireBytes(0), net::kHeaderBytes);
  EXPECT_EQ(ContactProtocol::pushWireBytes(500), net::kHeaderBytes + 500u);
}

// The rules are constexpr so the simulator can fold them; keep that true.
static_assert(ContactProtocol::decidePush(std::nullopt, 1, true) == PushVerdict::kSend);
static_assert(!ContactProtocol::wantsVersion(2, 2));

}  // namespace
}  // namespace dtncache::cache
