#include "cache/coop_cache.hpp"

#include <gtest/gtest.h>

#include "baselines/baselines.hpp"
#include "data/source.hpp"
#include "net/network.hpp"
#include "sim/simulator.hpp"

namespace dtncache::cache {
namespace {

/// Test scheme: the source pushes to any peer the substrate will accept.
class PushAlwaysScheme : public RefreshScheme {
 public:
  std::string name() const override { return "PushAlways"; }
  void onContact(CooperativeCache& cache, NodeId a, NodeId b, sim::SimTime t,
                 net::ContactChannel& channel) override {
    for (data::ItemId item = 0; item < cache.catalog().size(); ++item) {
      cache.pushVersion(a, b, item, t, channel, net::Traffic::kRefresh);
      cache.pushVersion(b, a, item, t, channel, net::Traffic::kRefresh);
    }
  }
};

/// A 4-node rig: node 0 is the source of the single item; nodes 1 and 2 are
/// the caching nodes (they dominate the planning rates); node 3 is a plain
/// requester. The contact schedule is hand-written per test.
struct Rig {
  explicit Rig(std::vector<trace::Contact> contacts, bool warmStart = true,
               sim::SimTime tau = 100.0, double bandwidth = 1e9)
      : trace(4, std::move(contacts)),
        catalog(makeCatalog(tau)),
        estimator(4, estimatorConfig(), 0.0),
        network(simulator, trace, networkConfig(bandwidth)),
        collector(catalog, 0.0),
        coop(simulator, network, catalog, estimator, collector, planningRates(),
             cacheConfig(warmStart)) {}

  static data::Catalog makeCatalog(sim::SimTime tau) {
    data::ItemSpec s;
    s.id = 0;
    s.source = 0;
    s.sizeBytes = 1000;
    s.refreshPeriod = tau;
    s.lifetime = 2 * tau;
    return data::Catalog({s});
  }
  static trace::EstimatorConfig estimatorConfig() {
    trace::EstimatorConfig e;
    e.mode = trace::EstimatorMode::kCumulative;
    return e;
  }
  static net::NetworkConfig networkConfig(double bandwidth) {
    net::NetworkConfig n;
    n.bandwidthBytesPerSec = bandwidth;
    n.minContactBudgetBytes = 0;
    return n;
  }
  static trace::RateMatrix planningRates() {
    trace::RateMatrix m(4);
    m.setRate(1, 0, 0.10);
    m.setRate(1, 2, 0.10);
    m.setRate(1, 3, 0.10);
    m.setRate(2, 0, 0.05);
    m.setRate(2, 3, 0.05);
    return m;  // centrality order: 1, 2, then the rest
  }
  static CoopCacheConfig cacheConfig(bool warmStart) {
    CoopCacheConfig c;
    c.cachingNodesPerItem = 2;
    c.warmStart = warmStart;
    c.sampleInterval = 50.0;
    return c;
  }

  void start(RefreshScheme& scheme, sim::SimTime horizon) {
    sources = std::make_unique<data::SourceProcess>(simulator, catalog, horizon);
    coop.setScheme(&scheme);
    coop.start(*sources, nullptr, horizon);
    this->horizon = horizon;
  }

  void run() { simulator.runUntil(horizon); }

  sim::Simulator simulator;
  trace::ContactTrace trace;
  data::Catalog catalog;
  trace::ContactRateEstimator estimator;
  net::Network network;
  metrics::MetricsCollector collector;
  CooperativeCache coop;
  std::unique_ptr<data::SourceProcess> sources;
  sim::SimTime horizon = 0.0;
};

TEST(CoopCache, CachingNodesAreCentralNonSourceNodes) {
  Rig rig({{1.0, 1.0, 0, 1}});
  const auto& set = rig.coop.cachingNodesOf(0);
  ASSERT_EQ(set.size(), 2u);
  EXPECT_TRUE(rig.coop.isCachingNode(1, 0));
  EXPECT_TRUE(rig.coop.isCachingNode(2, 0));
  EXPECT_FALSE(rig.coop.isCachingNode(0, 0));  // the source never "caches"
  EXPECT_FALSE(rig.coop.isCachingNode(3, 0));
}

TEST(CoopCache, WarmStartPopulatesCaches) {
  Rig rig({{1.0, 1.0, 0, 1}});
  baselines::NoRefreshScheme scheme;
  rig.start(scheme, 10.0);
  EXPECT_NE(rig.coop.storeOf(1).find(0), nullptr);
  EXPECT_NE(rig.coop.storeOf(2).find(0), nullptr);
  EXPECT_EQ(rig.coop.storeOf(3).find(0), nullptr);
  EXPECT_EQ(rig.collector.totalCopies(), 2u);
}

TEST(CoopCache, HeldVersionSemantics) {
  Rig rig({{1.0, 1.0, 0, 1}});
  baselines::NoRefreshScheme scheme;
  rig.start(scheme, 350.0);
  rig.run();
  // The source always holds the live version (3 bumps by t=350).
  EXPECT_EQ(rig.coop.heldVersion(0, 0, 350.0), data::Version{3});
  // Member 1 still stores the warm-start version 0, but that copy expired
  // at t=200 (lifetime 2*tau): heldVersion reports only valid copies, so
  // the member can no longer serve it even though the bytes are present.
  EXPECT_NE(rig.coop.storeOf(1).find(0), nullptr);
  EXPECT_FALSE(rig.coop.heldVersion(1, 0, 350.0).has_value());
  // Before expiry the same copy was servable.
  EXPECT_EQ(rig.coop.heldVersion(1, 0, 150.0), data::Version{0});
  // Non-holders hold nothing.
  EXPECT_FALSE(rig.coop.heldVersion(3, 0, 350.0).has_value());
}

TEST(CoopCache, PushVersionUpgradesMemberOnContact) {
  // Source meets member 1 at t=150, after the version-1 bump at t=100.
  Rig rig({{150.0, 10.0, 0, 1}});
  PushAlwaysScheme scheme;
  rig.start(scheme, 200.0);
  rig.run();
  EXPECT_EQ(rig.coop.storeOf(1).find(0)->version, 1u);
  EXPECT_EQ(rig.coop.storeOf(2).find(0)->version, 0u);  // never met the source
  EXPECT_GT(rig.network.transfers().of(net::Traffic::kRefresh).bytes, 0u);
}

TEST(CoopCache, PushToNonMemberIsRefused) {
  Rig rig({{150.0, 10.0, 0, 3}});  // node 3 is not a caching node
  PushAlwaysScheme scheme;
  rig.start(scheme, 200.0);
  rig.run();
  EXPECT_EQ(rig.coop.storeOf(3).find(0), nullptr);
  EXPECT_EQ(rig.network.transfers().of(net::Traffic::kRefresh).bytes, 0u);
}

TEST(CoopCache, PushSameVersionIsSkippedWithoutBytes) {
  Rig rig({{50.0, 10.0, 0, 1}});  // before any bump: both hold version 0
  PushAlwaysScheme scheme;
  rig.start(scheme, 90.0);
  rig.run();
  EXPECT_EQ(rig.network.transfers().of(net::Traffic::kRefresh).bytes, 0u);
}

TEST(CoopCache, HandshakeAccountedPerContact) {
  Rig rig({{1.0, 1.0, 0, 1}, {2.0, 1.0, 2, 3}});
  baselines::NoRefreshScheme scheme;
  rig.start(scheme, 10.0);
  rig.run();
  // One control message per direction per contact, attributed to the sender.
  EXPECT_EQ(rig.network.transfers().of(net::Traffic::kControl).messages, 4u);
  const auto& perNode = rig.network.transfers().perNodeBytes();
  ASSERT_EQ(perNode.size(), 4u);
  for (NodeId n = 0; n < 4; ++n) EXPECT_GT(perNode[n], 0u);
}

TEST(CoopCache, TinyContactBudgetBlocksDataButNotProgress) {
  // 1 byte/s for 1 s cannot even carry the handshake.
  Rig rig({{150.0, 1.0, 0, 1}}, true, 100.0, /*bandwidth=*/1.0);
  PushAlwaysScheme scheme;
  rig.start(scheme, 200.0);
  rig.run();
  EXPECT_EQ(rig.coop.storeOf(1).find(0)->version, 0u);
  EXPECT_EQ(rig.network.transfers().total().bytes, 0u);
}

TEST(CoopCache, LocalQueryHitAnswersInstantly) {
  Rig rig({{1.0, 1.0, 0, 1}});
  baselines::NoRefreshScheme scheme;
  rig.start(scheme, 400.0);
  data::Query q;
  q.id = 1;
  q.requester = 1;  // a caching node
  q.item = 0;
  q.issueTime = 50.0;
  q.deadline = 150.0;
  rig.simulator.scheduleAt(50.0, [&](sim::SimTime) { rig.coop.issueQuery(q); });
  rig.run();
  const auto r = rig.collector.finalize(400.0, rig.network.transfers());
  EXPECT_EQ(r.queries.issued, 1u);
  EXPECT_EQ(r.queries.answered, 1u);
  EXPECT_EQ(r.queries.localHits, 1u);
  EXPECT_EQ(r.queries.answeredFresh, 1u);
  EXPECT_DOUBLE_EQ(r.queries.delay.mean(), 0.0);
}

TEST(CoopCache, SourceAnswersItsOwnQueriesLocally) {
  Rig rig({{1.0, 1.0, 0, 1}});
  baselines::NoRefreshScheme scheme;
  rig.start(scheme, 400.0);
  data::Query q;
  q.id = 1;
  q.requester = 0;
  q.item = 0;
  q.issueTime = 50.0;
  q.deadline = 150.0;
  rig.simulator.scheduleAt(50.0, [&](sim::SimTime) { rig.coop.issueQuery(q); });
  rig.run();
  const auto r = rig.collector.finalize(400.0, rig.network.transfers());
  EXPECT_EQ(r.queries.localHits, 1u);
}

TEST(CoopCache, RemoteQueryAnsweredViaContact) {
  // Requester 3 queries at t=10; meets caching node 1 at t=30. The query
  // transfers to node 1 which generates a reply delivered in the same
  // contact's reverse pass.
  Rig rig({{30.0, 60.0, 1, 3}});
  baselines::NoRefreshScheme scheme;
  rig.start(scheme, 400.0);
  data::Query q;
  q.id = 1;
  q.requester = 3;
  q.item = 0;
  q.issueTime = 10.0;
  q.deadline = 200.0;
  rig.simulator.scheduleAt(10.0, [&](sim::SimTime) { rig.coop.issueQuery(q); });
  rig.run();
  const auto r = rig.collector.finalize(400.0, rig.network.transfers());
  EXPECT_EQ(r.queries.answered, 1u);
  EXPECT_EQ(r.queries.answeredValid, 1u);
  EXPECT_EQ(r.queries.localHits, 0u);
  EXPECT_DOUBLE_EQ(r.queries.delay.mean(), 20.0);
  EXPECT_GT(rig.network.transfers().of(net::Traffic::kReply).bytes, 0u);
}

TEST(CoopCache, StaleValidAnswerCountsValidNotFresh) {
  // Version bumps at t=100; member 1 still holds version 0 (valid until
  // t=200). A query answered at t=150 gets valid-but-stale data.
  Rig rig({{150.0, 60.0, 1, 3}});
  baselines::NoRefreshScheme scheme;
  rig.start(scheme, 400.0);
  data::Query q;
  q.id = 1;
  q.requester = 3;
  q.item = 0;
  q.issueTime = 140.0;
  q.deadline = 190.0;
  rig.simulator.scheduleAt(140.0, [&](sim::SimTime) { rig.coop.issueQuery(q); });
  rig.run();
  const auto r = rig.collector.finalize(400.0, rig.network.transfers());
  EXPECT_EQ(r.queries.answered, 1u);
  EXPECT_EQ(r.queries.answeredValid, 1u);
  EXPECT_EQ(r.queries.answeredFresh, 0u);
}

TEST(CoopCache, ExpiredCopyCannotAnswer) {
  // Member 1 holds version 0, which expires at t=200. Contact at t=250.
  Rig rig({{250.0, 60.0, 1, 3}});
  baselines::NoRefreshScheme scheme;
  rig.start(scheme, 400.0);
  data::Query q;
  q.id = 1;
  q.requester = 3;
  q.item = 0;
  q.issueTime = 240.0;
  q.deadline = 300.0;
  rig.simulator.scheduleAt(240.0, [&](sim::SimTime) { rig.coop.issueQuery(q); });
  rig.run();
  const auto r = rig.collector.finalize(400.0, rig.network.transfers());
  EXPECT_EQ(r.queries.answered, 0u);
}

TEST(CoopCache, LateReplyIsNotCounted) {
  // Query deadline t=25, but the only contact is at t=30.
  Rig rig({{30.0, 60.0, 1, 3}});
  baselines::NoRefreshScheme scheme;
  rig.start(scheme, 400.0);
  data::Query q;
  q.id = 1;
  q.requester = 3;
  q.item = 0;
  q.issueTime = 10.0;
  q.deadline = 25.0;
  rig.simulator.scheduleAt(10.0, [&](sim::SimTime) { rig.coop.issueQuery(q); });
  rig.run();
  const auto r = rig.collector.finalize(400.0, rig.network.transfers());
  EXPECT_EQ(r.queries.answered, 0u);
}

TEST(CoopCache, ColdStartPlacementDeliversCopies) {
  // warmStart=false: the source must ship copies to members 1 and 2.
  // Source meets 1 directly; 1 later meets 2 (relay of the unicast copy
  // addressed to 2 requires 1 to be a better carrier — estimator sees the
  // 1↔2 contact history from these contacts themselves).
  std::vector<trace::Contact> contacts;
  contacts.push_back({5.0, 10.0, 0, 1});
  for (int i = 0; i < 5; ++i)
    contacts.push_back({20.0 + 10.0 * i, 5.0, 1, 2});
  contacts.push_back({80.0, 10.0, 0, 1});
  contacts.push_back({90.0, 10.0, 1, 2});  // final leg for the relayed copy
  Rig rig(std::move(contacts), /*warmStart=*/false);
  baselines::NoRefreshScheme scheme;
  rig.start(scheme, 99.0);
  rig.run();
  EXPECT_NE(rig.coop.storeOf(1).find(0), nullptr);
  EXPECT_NE(rig.coop.storeOf(2).find(0), nullptr);
  EXPECT_GT(rig.network.transfers().of(net::Traffic::kPlacement).bytes, 0u);
}

TEST(CoopCache, PullMessageReachesSourceAndDataReturns) {
  // Member 1 injects a pull at t=10; meets source at t=20 (pull answered);
  // data copy handed back in the same contact.
  Rig rig({{20.0, 60.0, 0, 1}});
  baselines::NoRefreshScheme scheme;
  rig.start(scheme, 400.0);
  rig.simulator.scheduleAt(10.0, [&](sim::SimTime t) {
    net::Message m;
    m.kind = net::MessageKind::kPull;
    m.item = 0;
    m.dst = 0;
    m.origin = 1;
    m.createdAt = t;
    m.deadline = t + 300.0;
    m.copiesLeft = 2;
    rig.coop.injectMessage(1, m, t);
  });
  // Let a version bump happen first so the pull returns something newer.
  rig.simulator.runUntil(400.0);
  EXPECT_GT(rig.network.transfers().of(net::Traffic::kPull).messages, 0u);
  // The pull response rides as a kDataCopy with refresh category.
  EXPECT_GT(rig.network.transfers().of(net::Traffic::kRefresh).bytes, 0u);
  EXPECT_EQ(rig.coop.storeOf(1).find(0)->version, 0u);  // t=20 < first bump
}

TEST(CoopCache, ValidFractionScansStores) {
  Rig rig({{1.0, 1.0, 0, 1}});
  baselines::NoRefreshScheme scheme;
  rig.start(scheme, 400.0);
  EXPECT_DOUBLE_EQ(rig.coop.validFraction(50.0), 1.0);    // both copies valid
  EXPECT_DOUBLE_EQ(rig.coop.validFraction(250.0), 0.0);   // both expired
}

TEST(CoopCache, RequiresSchemeBeforeStart) {
  Rig rig({{1.0, 1.0, 0, 1}});
  data::SourceProcess sources(rig.simulator, rig.catalog, 10.0);
  EXPECT_THROW(rig.coop.start(sources, nullptr, 10.0), InvariantViolation);
}

TEST(CoopCache, CachingSetSizeMustLeaveRoomForSource) {
  std::vector<trace::Contact> contacts{{1.0, 1.0, 0, 1}};
  trace::ContactTrace trace(4, std::move(contacts));
  sim::Simulator simulator;
  net::Network network(simulator, trace);
  data::Catalog catalog = Rig::makeCatalog(100.0);
  trace::ContactRateEstimator estimator(4, Rig::estimatorConfig(), 0.0);
  metrics::MetricsCollector collector(catalog, 0.0);
  CoopCacheConfig cfg;
  cfg.cachingNodesPerItem = 4;  // == node count: impossible
  EXPECT_THROW(CooperativeCache(simulator, network, catalog, estimator, collector,
                                Rig::planningRates(), cfg),
               InvariantViolation);
}

}  // namespace
}  // namespace dtncache::cache
