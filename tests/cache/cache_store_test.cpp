#include "cache/cache_store.hpp"

#include <gtest/gtest.h>

namespace dtncache::cache {
namespace {

TEST(CacheStore, InsertAndFind) {
  CacheStore s(1024);
  const auto r = s.insert(/*item=*/1, /*version=*/0, /*size=*/100, /*now=*/0.0);
  EXPECT_EQ(r.kind, InsertResult::Kind::kInserted);
  const CacheEntry* e = s.find(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->version, 0u);
  EXPECT_EQ(s.usedBytes(), 100u);
}

TEST(CacheStore, UpgradeReplacesVersionInPlace) {
  CacheStore s(1024);
  s.insert(1, 0, 100, 0.0);
  const auto r = s.insert(1, 3, 100, 5.0);
  EXPECT_EQ(r.kind, InsertResult::Kind::kUpgraded);
  EXPECT_EQ(r.previousVersion, 0u);
  EXPECT_EQ(s.find(1)->version, 3u);
  EXPECT_DOUBLE_EQ(s.find(1)->receivedAt, 5.0);
  EXPECT_EQ(s.usedBytes(), 100u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(CacheStore, SameOrOlderVersionIsNoop) {
  CacheStore s(1024);
  s.insert(1, 5, 100, 0.0);
  EXPECT_EQ(s.insert(1, 5, 100, 1.0).kind, InsertResult::Kind::kAlreadyCurrent);
  EXPECT_EQ(s.insert(1, 2, 100, 1.0).kind, InsertResult::Kind::kAlreadyCurrent);
  EXPECT_EQ(s.find(1)->version, 5u);
}

TEST(CacheStore, RejectsLargerThanCapacity) {
  CacheStore s(100);
  EXPECT_EQ(s.insert(1, 0, 200, 0.0).kind, InsertResult::Kind::kRejected);
  EXPECT_EQ(s.size(), 0u);
}

TEST(CacheStore, LruEvictionOnOverflow) {
  CacheStore s(250);
  s.insert(1, 0, 100, 1.0);
  s.insert(2, 0, 100, 2.0);
  s.recordAccess(1, 3.0);  // item 2 is now least recently used
  const auto r = s.insert(3, 0, 100, 4.0);
  EXPECT_EQ(r.kind, InsertResult::Kind::kInserted);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0].item, 2u);
  EXPECT_EQ(s.find(2), nullptr);
  EXPECT_NE(s.find(1), nullptr);
}

TEST(CacheStore, EvictionMayRemoveSeveral) {
  CacheStore s(300);
  s.insert(1, 0, 100, 1.0);
  s.insert(2, 0, 100, 2.0);
  s.insert(3, 0, 100, 3.0);
  const auto r = s.insert(4, 0, 250, 4.0);
  EXPECT_EQ(r.kind, InsertResult::Kind::kInserted);
  // 250 + any 100-byte survivor exceeds 300, so all three must go.
  EXPECT_EQ(r.evicted.size(), 3u);
  EXPECT_EQ(s.usedBytes(), 250u);
}

TEST(CacheStore, RemoveReturnsEntry) {
  CacheStore s(1024);
  s.insert(7, 2, 100, 0.0);
  const auto e = s.remove(7);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->version, 2u);
  EXPECT_EQ(s.usedBytes(), 0u);
  EXPECT_FALSE(s.remove(7).has_value());
}

TEST(CacheStore, AccessBumpsCountAndRecency) {
  CacheStore s(1024);
  s.insert(1, 0, 10, 0.0);
  s.recordAccess(1, 5.0);
  s.recordAccess(1, 6.0);
  EXPECT_EQ(s.find(1)->accessCount, 2u);
  EXPECT_DOUBLE_EQ(s.find(1)->lastAccess, 6.0);
}

TEST(CacheStore, AccessOnMissingItemIsNoop) {
  CacheStore s(1024);
  s.recordAccess(99, 1.0);  // must not crash
  EXPECT_EQ(s.size(), 0u);
}

TEST(CacheStore, EntriesSortedByItem) {
  CacheStore s(1024);
  s.insert(5, 0, 10, 0.0);
  s.insert(1, 0, 10, 0.0);
  s.insert(3, 0, 10, 0.0);
  const auto es = s.entries();
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0]->item, 1u);
  EXPECT_EQ(es[1]->item, 3u);
  EXPECT_EQ(es[2]->item, 5u);
}

TEST(CacheStore, ExpiryWatermarkBasics) {
  CacheStore s(1024);
  EXPECT_FALSE(s.hasUnexpired(0.0));  // empty store has nothing valid
  s.insert(1, 0, 100, 0.0, /*expiresAt=*/50.0);
  EXPECT_TRUE(s.hasUnexpired(49.9));
  EXPECT_FALSE(s.hasUnexpired(50.0));  // expired AT the boundary instant
  // Upgrading to a fresher version extends validity...
  s.insert(1, 1, 100, 10.0, /*expiresAt=*/80.0);
  EXPECT_TRUE(s.hasUnexpired(50.0));
  EXPECT_FALSE(s.hasUnexpired(80.0));
  // ...and removal retracts the watermark.
  s.remove(1);
  EXPECT_FALSE(s.hasUnexpired(0.0));
}

TEST(CacheStore, HasUnexpiredMatchesFullScanUnderRandomChurn) {
  // Property check for the expiry watermark: hasUnexpired(now) must equal a
  // full scan for an entry with expiresAt > now, under arbitrary mixes of
  // insert (forever and time-bounded validity), version upgrades that can
  // RAISE or LOWER the bound, targeted removal, recency touches, and LRU
  // eviction under capacity pressure.
  std::uint64_t rng = 0x853c49e6748fea9bull;
  auto next = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return static_cast<std::uint32_t>(rng >> 33);
  };
  for (int trial = 0; trial < 20; ++trial) {
    CacheStore s(600);  // ~6 entries of 100B: inserts evict constantly
    sim::SimTime now = 0.0;
    for (int step = 0; step < 400; ++step) {
      now += static_cast<sim::SimTime>(next() % 100) / 10.0;
      const data::ItemId item = next() % 12;
      switch (next() % 5) {
        case 0:
        case 1:
        case 2: {  // insert/upgrade with a random validity bound
          const data::Version v = next() % 6;
          const std::uint32_t kind = next() % 6;
          sim::SimTime expiresAt = kNeverExpires;
          if (kind != 0) {
            expiresAt = now + static_cast<sim::SimTime>(next() % 400) / 10.0 - 10.0;
            if (expiresAt < 0.0) expiresAt = 0.0;
          }
          s.insert(item, v, 100, now, expiresAt);
          break;
        }
        case 3:
          s.remove(item);
          break;
        case 4:
          s.recordAccess(item, now);
          break;
      }
      for (const sim::SimTime at : {now, now + static_cast<sim::SimTime>(next() % 300) / 10.0}) {
        bool scanValid = false;
        s.forEachEntry([&](const CacheEntry& e) {
          if (at < e.expiresAt) scanValid = true;
        });
        ASSERT_EQ(s.hasUnexpired(at), scanValid)
            << "trial " << trial << " step " << step << " at " << at
            << " size " << s.size();
      }
    }
  }
}

}  // namespace
}  // namespace dtncache::cache
