#include "cache/cache_store.hpp"

#include <gtest/gtest.h>

namespace dtncache::cache {
namespace {

TEST(CacheStore, InsertAndFind) {
  CacheStore s(1024);
  const auto r = s.insert(/*item=*/1, /*version=*/0, /*size=*/100, /*now=*/0.0);
  EXPECT_EQ(r.kind, InsertResult::Kind::kInserted);
  const CacheEntry* e = s.find(1);
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->version, 0u);
  EXPECT_EQ(s.usedBytes(), 100u);
}

TEST(CacheStore, UpgradeReplacesVersionInPlace) {
  CacheStore s(1024);
  s.insert(1, 0, 100, 0.0);
  const auto r = s.insert(1, 3, 100, 5.0);
  EXPECT_EQ(r.kind, InsertResult::Kind::kUpgraded);
  EXPECT_EQ(r.previousVersion, 0u);
  EXPECT_EQ(s.find(1)->version, 3u);
  EXPECT_DOUBLE_EQ(s.find(1)->receivedAt, 5.0);
  EXPECT_EQ(s.usedBytes(), 100u);
  EXPECT_EQ(s.size(), 1u);
}

TEST(CacheStore, SameOrOlderVersionIsNoop) {
  CacheStore s(1024);
  s.insert(1, 5, 100, 0.0);
  EXPECT_EQ(s.insert(1, 5, 100, 1.0).kind, InsertResult::Kind::kAlreadyCurrent);
  EXPECT_EQ(s.insert(1, 2, 100, 1.0).kind, InsertResult::Kind::kAlreadyCurrent);
  EXPECT_EQ(s.find(1)->version, 5u);
}

TEST(CacheStore, RejectsLargerThanCapacity) {
  CacheStore s(100);
  EXPECT_EQ(s.insert(1, 0, 200, 0.0).kind, InsertResult::Kind::kRejected);
  EXPECT_EQ(s.size(), 0u);
}

TEST(CacheStore, LruEvictionOnOverflow) {
  CacheStore s(250);
  s.insert(1, 0, 100, 1.0);
  s.insert(2, 0, 100, 2.0);
  s.recordAccess(1, 3.0);  // item 2 is now least recently used
  const auto r = s.insert(3, 0, 100, 4.0);
  EXPECT_EQ(r.kind, InsertResult::Kind::kInserted);
  ASSERT_EQ(r.evicted.size(), 1u);
  EXPECT_EQ(r.evicted[0].item, 2u);
  EXPECT_EQ(s.find(2), nullptr);
  EXPECT_NE(s.find(1), nullptr);
}

TEST(CacheStore, EvictionMayRemoveSeveral) {
  CacheStore s(300);
  s.insert(1, 0, 100, 1.0);
  s.insert(2, 0, 100, 2.0);
  s.insert(3, 0, 100, 3.0);
  const auto r = s.insert(4, 0, 250, 4.0);
  EXPECT_EQ(r.kind, InsertResult::Kind::kInserted);
  // 250 + any 100-byte survivor exceeds 300, so all three must go.
  EXPECT_EQ(r.evicted.size(), 3u);
  EXPECT_EQ(s.usedBytes(), 250u);
}

TEST(CacheStore, RemoveReturnsEntry) {
  CacheStore s(1024);
  s.insert(7, 2, 100, 0.0);
  const auto e = s.remove(7);
  ASSERT_TRUE(e.has_value());
  EXPECT_EQ(e->version, 2u);
  EXPECT_EQ(s.usedBytes(), 0u);
  EXPECT_FALSE(s.remove(7).has_value());
}

TEST(CacheStore, AccessBumpsCountAndRecency) {
  CacheStore s(1024);
  s.insert(1, 0, 10, 0.0);
  s.recordAccess(1, 5.0);
  s.recordAccess(1, 6.0);
  EXPECT_EQ(s.find(1)->accessCount, 2u);
  EXPECT_DOUBLE_EQ(s.find(1)->lastAccess, 6.0);
}

TEST(CacheStore, AccessOnMissingItemIsNoop) {
  CacheStore s(1024);
  s.recordAccess(99, 1.0);  // must not crash
  EXPECT_EQ(s.size(), 0u);
}

TEST(CacheStore, EntriesSortedByItem) {
  CacheStore s(1024);
  s.insert(5, 0, 10, 0.0);
  s.insert(1, 0, 10, 0.0);
  s.insert(3, 0, 10, 0.0);
  const auto es = s.entries();
  ASSERT_EQ(es.size(), 3u);
  EXPECT_EQ(es[0]->item, 1u);
  EXPECT_EQ(es[1]->item, 3u);
  EXPECT_EQ(es[2]->item, 5u);
}

}  // namespace
}  // namespace dtncache::cache
