#include "metrics/report.hpp"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "sim/assert.hpp"

namespace dtncache::metrics {
namespace {

TEST(Fmt, FixedPrecision) {
  EXPECT_EQ(fmt(1.23456), "1.235");
  EXPECT_EQ(fmt(1.0, 1), "1.0");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(Fmt, NegativeAndZero) {
  EXPECT_EQ(fmt(-2.5, 1), "-2.5");
  EXPECT_EQ(fmt(0.0, 2), "0.00");
}

TEST(Table, AlignedOutputContainsAllCells) {
  Table t({"name", "value"});
  t.addRow({"alpha", "1"}).addRow({"b", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("22"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, ColumnsAlignAcrossRows) {
  Table t({"a", "long_header"});
  t.addRow({"xxxxxxx", "1"});
  std::ostringstream os;
  t.print(os);
  std::istringstream in(os.str());
  std::string header, rule, row;
  std::getline(in, header);
  std::getline(in, rule);
  std::getline(in, row);
  // The second column must start at the same offset in header and row.
  EXPECT_EQ(header.find("long_header"), row.find("1"));
}

TEST(Table, CsvOutput) {
  Table t({"a", "b"});
  t.addRow({"1", "2"});
  std::ostringstream os;
  t.printCsv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TimeSeriesCsv, WritesHeaderAndAlignedRows) {
  sim::TimeSeries a;
  sim::TimeSeries b;
  for (int i = 0; i <= 10; ++i) {
    a.record(sim::days(i), 0.1 * i);
    b.record(sim::days(i), 1.0 - 0.1 * i);
  }
  const std::string path = "/tmp/dtncache_series_test.csv";
  writeTimeSeriesCsv(path, {{"up", a}, {"down", b}}, 5);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "time_days,up,down");
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) ++rows;
  EXPECT_EQ(rows, 5u);
}

TEST(TimeSeriesCsv, EmptySeriesListRejected) {
  EXPECT_THROW(writeTimeSeriesCsv("/tmp/x.csv", {}), InvariantViolation);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), InvariantViolation);
}

TEST(Table, EmptyHeaderRejected) {
  EXPECT_THROW(Table({}), InvariantViolation);
}

}  // namespace
}  // namespace dtncache::metrics
