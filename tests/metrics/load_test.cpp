#include "metrics/load.hpp"

#include <gtest/gtest.h>

namespace dtncache::metrics {
namespace {

TEST(LoadStats, EmptyInput) {
  const auto s = loadStats({});
  EXPECT_DOUBLE_EQ(s.meanBytes, 0.0);
  EXPECT_EQ(s.activeNodes, 0u);
}

TEST(LoadStats, AllZeros) {
  const auto s = loadStats({0, 0, 0});
  EXPECT_DOUBLE_EQ(s.meanBytes, 0.0);
  EXPECT_DOUBLE_EQ(s.gini, 0.0);
  EXPECT_EQ(s.activeNodes, 0u);
}

TEST(LoadStats, PerfectlyEvenLoad) {
  const auto s = loadStats({100, 100, 100, 100});
  EXPECT_DOUBLE_EQ(s.meanBytes, 100.0);
  EXPECT_DOUBLE_EQ(s.peakToMean, 1.0);
  EXPECT_NEAR(s.gini, 0.0, 1e-12);
  EXPECT_EQ(s.activeNodes, 4u);
}

TEST(LoadStats, SingleWorkerIsMaximallyUnequal) {
  const std::size_t n = 10;
  std::vector<std::uint64_t> v(n, 0);
  v[7] = 1000;
  const auto s = loadStats(v);
  EXPECT_EQ(s.busiestNode, 7u);
  EXPECT_EQ(s.maxBytes, 1000u);
  EXPECT_DOUBLE_EQ(s.peakToMean, 10.0);
  // Gini of "one has all" over n nodes is (n-1)/n.
  EXPECT_NEAR(s.gini, 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(s.top10Share, 1.0);
}

TEST(LoadStats, KnownGiniValue) {
  // {1, 3}: mean 2; G = |1-3|·2 / (2·n²·mean) ... closed-form for two
  // values a<b is (b-a)/(2(a+b)) · 2 = (b-a)/(a+b)·(1/2)·2 = 0.25.
  const auto s = loadStats({1, 3});
  EXPECT_NEAR(s.gini, 0.25, 1e-12);
}

TEST(LoadStats, GiniInsensitiveToScale) {
  const auto a = loadStats({1, 2, 3, 4});
  const auto b = loadStats({1000, 2000, 3000, 4000});
  EXPECT_NEAR(a.gini, b.gini, 1e-12);
}

TEST(LoadStats, MoreConcentrationMeansHigherGini) {
  const auto even = loadStats({25, 25, 25, 25});
  const auto skew = loadStats({5, 10, 15, 70});
  const auto extreme = loadStats({0, 0, 0, 100});
  EXPECT_LT(even.gini, skew.gini);
  EXPECT_LT(skew.gini, extreme.gini);
}

TEST(LoadStats, Top10ShareWithLargeN) {
  std::vector<std::uint64_t> v(100, 10);
  for (std::size_t i = 0; i < 10; ++i) v[i] = 910;  // top 10 nodes hold 90%+
  const auto s = loadStats(v);
  EXPECT_NEAR(s.top10Share, 9100.0 / 10000.0, 1e-12);
}

}  // namespace
}  // namespace dtncache::metrics
