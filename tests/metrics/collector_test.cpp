#include "metrics/collector.hpp"

#include <gtest/gtest.h>

namespace dtncache::metrics {
namespace {

data::Catalog oneItem(double tau = 100.0) {
  data::ItemSpec s;
  s.id = 0;
  s.source = 0;
  s.refreshPeriod = tau;
  s.lifetime = 2 * tau;
  return data::Catalog({s});
}

TEST(Collector, FreshFractionTracksInstalls) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  EXPECT_DOUBLE_EQ(c.currentFreshFraction(), 0.0);
  c.copyInstalled(0, 0, 0.0);   // fresh (version 0 current)
  EXPECT_DOUBLE_EQ(c.currentFreshFraction(), 1.0);
  c.copyInstalled(0, 0, 150.0);  // stale (version 1 current at t=150)
  EXPECT_DOUBLE_EQ(c.currentFreshFraction(), 0.5);
}

TEST(Collector, VersionBumpMakesAllCopiesStale) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  c.copyInstalled(0, 0, 0.0);
  c.copyInstalled(0, 0, 10.0);
  c.versionBumped(0, 100.0);
  EXPECT_DOUBLE_EQ(c.currentFreshFraction(), 0.0);
}

TEST(Collector, UpgradeRestoresFreshness) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  c.copyInstalled(0, 0, 0.0);
  c.versionBumped(0, 100.0);
  c.copyUpgraded(0, 0, 1, 120.0);
  EXPECT_DOUBLE_EQ(c.currentFreshFraction(), 1.0);
}

TEST(Collector, StaleUpgradeDoesNotCountFresh) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  c.copyInstalled(0, 0, 0.0);
  c.versionBumped(0, 100.0);
  c.versionBumped(0, 200.0);
  c.copyUpgraded(0, 0, 1, 250.0);  // upgraded to v1 while v2 is current
  EXPECT_DOUBLE_EQ(c.currentFreshFraction(), 0.0);
}

TEST(Collector, EvictionRemovesCopyAndFreshness) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  c.copyInstalled(0, 0, 0.0);
  c.copyInstalled(0, 0, 1.0);
  c.copyEvicted(0, 0, 2.0);
  EXPECT_EQ(c.totalCopies(), 1u);
  EXPECT_DOUBLE_EQ(c.currentFreshFraction(), 1.0);
}

TEST(Collector, TimeWeightedMeanIntegratesCorrectly) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  c.copyInstalled(0, 0, 0.0);     // fresh from t=0
  c.versionBumped(0, 100.0);      // stale from t=100
  c.copyUpgraded(0, 0, 1, 150.0); // fresh again from t=150
  const auto r = c.finalize(200.0, net::TransferLog{});
  // Fresh during [0,100) and [150,200): 150/200.
  EXPECT_NEAR(r.meanFreshFraction, 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(r.finalFreshFraction, 1.0);
}

TEST(Collector, RefreshWithinPeriodRatio) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  c.copyInstalled(0, 0, 0.0);
  c.copyInstalled(0, 0, 1.0);
  c.versionBumped(0, 100.0);      // 2 slots
  c.copyUpgraded(0, 0, 1, 120.0); // fresh upgrade: 1 hit
  c.versionBumped(0, 200.0);      // 2 more slots
  c.copyUpgraded(0, 0, 2, 220.0); // fresh upgrade: 1 hit (the other copy)
  c.versionBumped(0, 300.0);      // 2 more slots
  c.copyUpgraded(0, 1, 2, 320.0); // stale upgrade (v3 current at 320): miss
  const auto r = c.finalize(400.0, net::TransferLog{});
  // 6 slots (3 bumps × 2 copies), 2 fresh upgrades.
  EXPECT_NEAR(r.refreshWithinPeriodRatio, 2.0 / 6.0, 1e-12);
}

TEST(Collector, QueryLifecycle) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  data::Query q;
  q.id = 1;
  q.issueTime = 10.0;
  q.deadline = 50.0;
  c.queryIssued(q);
  c.queryAnswered(1, 30.0, /*fresh=*/true, /*valid=*/true, /*localHit=*/false);
  const auto r = c.finalize(100.0, net::TransferLog{});
  EXPECT_EQ(r.queries.issued, 1u);
  EXPECT_EQ(r.queries.answered, 1u);
  EXPECT_EQ(r.queries.answeredFresh, 1u);
  EXPECT_DOUBLE_EQ(r.queries.delay.mean(), 20.0);
  EXPECT_DOUBLE_EQ(r.queries.successRatio(), 1.0);
}

TEST(Collector, DuplicateAnswersIgnored) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  data::Query q;
  q.id = 1;
  q.issueTime = 10.0;
  q.deadline = 50.0;
  c.queryIssued(q);
  c.queryAnswered(1, 20.0, true, true, false);
  c.queryAnswered(1, 25.0, true, true, false);
  const auto r = c.finalize(100.0, net::TransferLog{});
  EXPECT_EQ(r.queries.answered, 1u);
  EXPECT_DOUBLE_EQ(r.queries.delay.mean(), 10.0);
}

TEST(Collector, LateAnswerRejected) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  data::Query q;
  q.id = 1;
  q.issueTime = 10.0;
  q.deadline = 50.0;
  c.queryIssued(q);
  c.queryAnswered(1, 60.0, true, true, false);
  const auto r = c.finalize(100.0, net::TransferLog{});
  EXPECT_EQ(r.queries.answered, 0u);
}

TEST(Collector, AnswerForUnknownQueryIgnored) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  c.queryAnswered(99, 60.0, true, true, false);
  const auto r = c.finalize(100.0, net::TransferLog{});
  EXPECT_EQ(r.queries.answered, 0u);
}

TEST(Collector, StaleValidAnswerCountsSeparately) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  data::Query q;
  q.id = 1;
  q.issueTime = 10.0;
  q.deadline = 50.0;
  c.queryIssued(q);
  c.queryAnswered(1, 20.0, /*fresh=*/false, /*valid=*/true, false);
  const auto r = c.finalize(100.0, net::TransferLog{});
  EXPECT_EQ(r.queries.answeredValid, 1u);
  EXPECT_EQ(r.queries.answeredFresh, 0u);
  EXPECT_DOUBLE_EQ(r.queries.freshAnswerRatio(), 0.0);
}

TEST(Collector, SamplesBuildTimeSeries) {
  const auto catalog = oneItem();
  MetricsCollector c(catalog, 0.0);
  c.copyInstalled(0, 0, 0.0);
  c.samplePoint(10.0, 1.0);
  c.versionBumped(0, 100.0);
  c.samplePoint(110.0, 0.5);
  const auto r = c.finalize(200.0, net::TransferLog{});
  ASSERT_EQ(r.freshOverTime.points().size(), 2u);
  EXPECT_DOUBLE_EQ(r.freshOverTime.points()[0].value, 1.0);
  EXPECT_DOUBLE_EQ(r.freshOverTime.points()[1].value, 0.0);
  EXPECT_DOUBLE_EQ(r.validOverTime.points()[1].value, 0.5);
  EXPECT_DOUBLE_EQ(r.meanValidFraction, 0.75);
}

TEST(Collector, MultiItemAggregation) {
  data::ItemSpec a;
  a.id = 0;
  a.source = 0;
  a.refreshPeriod = 100.0;
  a.lifetime = 200.0;
  data::ItemSpec b = a;
  b.id = 1;
  b.source = 1;
  data::Catalog catalog({a, b});
  MetricsCollector c(catalog, 0.0);
  c.copyInstalled(0, 0, 0.0);
  c.copyInstalled(1, 0, 0.0);
  c.versionBumped(0, 100.0);  // item 0 copies stale; item 1 still fresh
  EXPECT_DOUBLE_EQ(c.currentFreshFraction(), 0.5);
}

}  // namespace
}  // namespace dtncache::metrics
