/// \file dtncache_peerd.cpp
/// The networked cache-freshness peer daemon: one process = one node of
/// the paper's scheme, speaking the dtncache wire protocol over TCP and
/// persisting its cache in an append-only log.
///
/// Examples:
///   dtncache_peerd --dump-config                   # full default config
///   dtncache_peerd --config=peer0.json             # run from a config file
///   dtncache_peerd --config=peer1.json --run-seconds=20
///
/// The config file is the same flat-JSON format as experiment configs
/// (`peer.*` namespace; unknown keys are rejected with a nearest-key
/// suggestion). A handful of flags override the file for scripting.
///
/// On exit the daemon writes its JSONL trace (same schema as a simulation
/// trace — scripts/trace_summarize.py reads it unchanged) followed by one
/// `"kind": "counters"` line carrying the `ctr.*` registry snapshot.

#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>

#include "obs/registry.hpp"
#include "obs/tracer.hpp"
#include "peer/peerd.hpp"
#include "runner/args.hpp"
#include "sim/assert.hpp"

using namespace dtncache;

namespace {

peer::EventLoop* g_loop = nullptr;

void handleSignal(int) {
  if (g_loop != nullptr) {
    g_loop->stop();
    g_loop->wakeup();
  }
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  DTNCACHE_CHECK_MSG(in.good(), "cannot read config file '" << path << "'");
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

void writeTrace(const std::string& path, obs::Tracer& tracer,
                const obs::Registry& registry) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "warning: cannot write trace file '" << path << "'\n";
    return;
  }
  tracer.flushTo(out);
  // Trailing counters line: the live analogue of the sweep's ctr.* columns.
  out << "{\"run\": \"" << tracer.runLabel() << "\", \"kind\": \"counters\"";
  for (const auto& [name, value] : registry.counterSnapshot())
    out << ", \"ctr." << name << "\": " << value;
  out << "}\n";
}

}  // namespace

int main(int argc, char** argv) {
  runner::ArgParser args(argc, argv);

  const std::string configPath =
      args.getString("--config", "", "flat-JSON config file (peer.* keys)");
  const bool dumpConfig =
      args.getBool("--dump-config", "print the effective config as JSON and exit");
  const auto node = args.getInt("--node", -1, "override peer.node");
  const auto nodes = args.getInt("--nodes", -1, "override peer.nodeCount");
  const auto items = args.getInt("--items", -1, "override peer.itemCount");
  const auto listenPort = args.getInt("--listen-port", -1, "override peer.listenPort");
  const std::string peers =
      args.getString("--peers", "", "override peer.peers (host:port,host:port,...)");
  const double runSeconds =
      args.getDouble("--run-seconds", -1.0, "override peer.runSeconds");
  const std::string tracePath =
      args.getString("--trace", "", "override peer.tracePath (JSONL output)");
  const std::string storePath =
      args.getString("--store", "", "override peer.storePath (append-only log)");

  if (args.helpRequested()) {
    std::cout << args.helpText("dtncache_peerd");
    return 0;
  }
  for (const std::string& error : args.errors()) std::cerr << "error: " << error << "\n";
  if (!args.errors().empty()) return 2;

  try {
    peer::PeerdConfig config;
    if (!configPath.empty()) peer::applyPeerConfigJson(config, readFile(configPath));
    if (node >= 0) config.node = static_cast<NodeId>(node);
    if (nodes >= 0) config.nodeCount = static_cast<std::uint32_t>(nodes);
    if (items >= 0) config.itemCount = static_cast<std::uint32_t>(items);
    if (listenPort >= 0) config.listenPort = static_cast<std::uint32_t>(listenPort);
    if (args.provided("--peers")) config.peers = peers;
    if (runSeconds >= 0.0) config.runSeconds = runSeconds;
    if (args.provided("--trace")) config.tracePath = tracePath;
    if (args.provided("--store")) config.storePath = storePath;

    if (dumpConfig) {
      std::cout << peer::dumpPeerConfigJson(config);
      return 0;
    }
    peer::validatePeerConfig(config);

    obs::Tracer tracer("peerd-node" + std::to_string(config.node));
    obs::Registry registry;
    peer::Peerd daemon(std::move(config), &tracer, &registry);
    if (!daemon.start()) {
      std::cerr << "error: failed to start (listen socket or store setup)\n";
      return 1;
    }

    g_loop = &daemon.loop();
    std::signal(SIGINT, handleSignal);
    std::signal(SIGTERM, handleSignal);
    std::signal(SIGPIPE, SIG_IGN);

    std::cout << "dtncache_peerd node " << daemon.config().node << " listening on port "
              << daemon.boundPort() << std::endl;
    daemon.run();
    g_loop = nullptr;

    if (!daemon.config().tracePath.empty())
      writeTrace(daemon.config().tracePath, tracer, registry);

    std::cout << "dtncache_peerd node " << daemon.config().node << " exiting;";
    for (data::ItemId item = 0; item < daemon.config().itemCount; ++item) {
      const auto held = daemon.heldVersion(item);
      std::cout << " item" << item << "=v" << (held ? *held : 0);
    }
    std::cout << std::endl;
    return 0;
  } catch (const InvariantViolation& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
