/// \file dtncache_sweep.cpp
/// Parameter-grid experiment driver on the parallel sweep engine.
///
/// Expands scheme × seed × knob axes over a base config (a config_io JSON
/// file or a trace preset), runs the grid on a thread pool, and emits one
/// JSONL record per run plus a CSV summary — deterministically ordered, so
/// `--jobs 8` output is byte-identical to `--jobs 1` apart from wall-clock
/// fields. Progress/ETA goes to stderr.
///
/// Examples:
///   dtncache_sweep --trace=infocom --schemes=all --seeds=5 --csv=-
///   dtncache_sweep --config=run.json --seeds=8 --jobs=8 --jsonl=out.jsonl
///   dtncache_sweep --trace=reality \
///     --sweep="hierarchical.replication.theta=0.5,0.7,0.9;catalog.refreshPeriodSeconds=43200,86400" \
///     --schemes=hierarchical --seeds=3 --csv=theta.csv
///   dtncache_sweep --trace=infocom --list   # print the expanded plan, run nothing
///
/// Distributed modes (see docs/sweep.md): all feed one fragment store, and
/// the merge is byte-identical to a single-process run of the same grid.
///   dtncache_sweep --trace=infocom --seeds=8 --store=S --coordinator --csv=out.csv
///   dtncache_sweep --worker=127.0.0.1:$(cat S/coordinator.port)
///   dtncache_sweep --trace=infocom --seeds=8 --store=S --spool-init
///   dtncache_sweep --store=S --spool-worker     # any number, any host w/ S mounted
///   dtncache_sweep --store=S --merge --csv=out.csv

#include <cctype>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "runner/args.hpp"
#include "runner/config_io.hpp"
#include "sweep/distributed.hpp"
#include "sweep/fragment_store.hpp"
#include "sweep/result_sink.hpp"
#include "sweep/work_unit.hpp"
#include "trace/mobility.hpp"
#include "sweep/sweep_engine.hpp"
#include "sweep/thread_pool.hpp"

using namespace dtncache;

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, sep))
    if (!part.empty()) parts.push_back(part);
  return parts;
}

std::vector<runner::SchemeKind> parseSchemes(const std::string& spec,
                                             std::vector<std::string>& errors) {
  if (spec == "all") return runner::allSchemes();
  std::vector<runner::SchemeKind> schemes;
  for (const auto& name : split(spec, ',')) {
    bool found = false;
    for (const auto kind : runner::allSchemes()) {
      std::string lower = runner::schemeName(kind);
      for (char& c : lower) c = static_cast<char>(std::tolower(c));
      if (lower == name) {
        schemes.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) errors.push_back("unknown scheme '" + name + "'");
  }
  return schemes;
}

/// "key=v1,v2;key2=w1" → axes. The '=' split is on the first '=' only.
std::vector<sweep::SweepAxis> parseAxes(const std::string& spec,
                                        std::vector<std::string>& errors) {
  std::vector<sweep::SweepAxis> axes;
  for (const auto& clause : split(spec, ';')) {
    const auto eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      errors.push_back("sweep clause '" + clause + "' is not key=v1,v2,...");
      continue;
    }
    sweep::SweepAxis axis;
    axis.key = clause.substr(0, eq);
    axis.values = split(clause.substr(eq + 1), ',');
    if (axis.values.empty()) {
      errors.push_back("sweep axis '" + axis.key + "' has no values");
      continue;
    }
    axes.push_back(std::move(axis));
  }
  return axes;
}

/// "-" means stdout; otherwise open the file (or die).
std::ostream* openSink(const std::string& path, std::ofstream& file) {
  if (path == "-") return &std::cout;
  file.open(path);
  if (!file.good()) {
    std::cerr << "error: cannot write " << path << "\n";
    std::exit(2);
  }
  return &file;
}

int runSweep(int argc, char** argv) {
  runner::ArgParser args(argc, argv);

  const std::string configFile =
      args.getString("--config", "", "base config JSON (config_io format)");
  const std::string traceName = args.getString(
      "--trace", "infocom",
      "preset base when no --config: reality | infocom | mobility");
  const auto nodesFlag = args.getInt(
      "--nodes", 0, "node count for the mobility preset (0 = preset default)");
  const double days =
      args.getDouble("--days", 0.0, "override trace duration in days (0 = preset)");
  const std::string schemeSpec = args.getString(
      "--schemes", "", "comma list of schemes, or 'all' (default: base config's)");
  const auto seedCount =
      args.getInt("--seeds", 1, "seed axis: base seed .. base seed + N - 1");
  const std::string sweepSpec = args.getString(
      "--sweep", "", "knob axes: \"key=v1,v2[;key2=w1,w2]\" (config_io dotted keys)");
  const auto jobs = args.getInt("--jobs", 0, "worker threads (0 = hardware cores)");
  const std::string jsonlPath =
      args.getString("--jsonl", "", "write one JSONL record per run ('-' = stdout)");
  const std::string csvPath =
      args.getString("--csv", "-", "write the CSV summary ('-' = stdout, '' = off)");
  const bool noWall =
      args.getBool("--no-wall", "omit wall-clock fields (byte-stable output)");
  const std::string traceOutPath = args.getString(
      "--trace-out", "", "write the merged JSONL event trace here ('-' = stdout)");
  const std::string traceFilterSpec = args.getString(
      "--trace-filter", "", "comma list of event kinds to keep (default: all)");
  const bool quiet = args.getBool("--quiet", "suppress progress/ETA on stderr");
  const bool list = args.getBool("--list", "print the expanded job plan and exit");
  const std::string storeDir = args.getString(
      "--store", "", "fragment store directory (checkpointed/distributed modes)");
  const bool coordinatorMode =
      args.getBool("--coordinator", "serve the sweep to TCP workers (needs --store)");
  const auto port = args.getInt(
      "--port", 0, "coordinator listen port (0 = auto; see <store>/coordinator.port)");
  const std::string workerSpec = args.getString(
      "--worker", "", "run as a TCP worker: HOST:PORT (or just PORT for localhost)");
  const bool spoolInitMode = args.getBool(
      "--spool-init", "write the manifest into --store for spool workers, then exit");
  const bool spoolWorkerMode = args.getBool(
      "--spool-worker", "lease and run jobs from --store (shared dir, no networking)");
  const bool mergeMode = args.getBool(
      "--merge", "merge a complete --store into --jsonl/--csv/--trace-out and exit");
  const bool resume =
      args.getBool("--resume", "accept fragments already in --store as completed");
  const double leaseTimeout = args.getDouble(
      "--lease-timeout", 600.0, "seconds before a silent lease is re-queued");

  if (args.helpRequested()) {
    std::cout << args.helpText("dtncache_sweep");
    return 0;
  }
  std::vector<std::string> errors = args.errors();
  if (seedCount < 1) errors.push_back("--seeds must be >= 1");
  if (jobs < 0) errors.push_back("--jobs must be >= 0");
  const int modeCount = static_cast<int>(coordinatorMode) +
                        static_cast<int>(!workerSpec.empty()) +
                        static_cast<int>(spoolInitMode) +
                        static_cast<int>(spoolWorkerMode) + static_cast<int>(mergeMode);
  if (modeCount > 1)
    errors.push_back(
        "--coordinator, --worker, --spool-init, --spool-worker and --merge are "
        "mutually exclusive");
  if ((coordinatorMode || spoolInitMode || spoolWorkerMode || mergeMode) &&
      storeDir.empty())
    errors.push_back("this mode needs --store=DIR");
  if (!storeDir.empty() && modeCount == 0)
    errors.push_back(
        "--store needs a mode: --coordinator, --spool-init, --spool-worker or "
        "--merge");
  if (port < 0 || port > 65535) errors.push_back("--port must be 0..65535");
  if (leaseTimeout <= 0.0) errors.push_back("--lease-timeout must be > 0");

  sweep::SweepGrid grid;
  if (!configFile.empty()) {
    grid.base = runner::loadConfigFile(configFile);
  } else if (traceName == "reality") {
    grid.base.trace = trace::realityLikeConfig();
    grid.base.catalog.refreshPeriod = sim::days(2);
    grid.base.workload.queriesPerNodePerDay = 1.0;
    grid.base.workload.queryDeadline = sim::days(1);
  } else if (traceName == "infocom") {
    grid.base.trace = trace::infocomLikeConfig();
    grid.base.catalog.refreshPeriod = sim::hours(6);
    grid.base.workload.queriesPerNodePerDay = 2.0;
    grid.base.workload.queryDeadline = sim::hours(3);
  } else if (traceName == "mobility") {
    grid.base.trace = trace::mobilityConfig(
        nodesFlag > 0 ? static_cast<std::size_t>(nodesFlag) : 1000);
    grid.base.catalog.refreshPeriod = sim::days(2);
    grid.base.workload.queriesPerNodePerDay = 1.0;
    grid.base.workload.queryDeadline = sim::days(1);
  } else {
    errors.push_back("unknown trace preset '" + traceName + "'");
  }
  if (days > 0.0) grid.base.trace.duration = sim::days(days);

  if (!schemeSpec.empty()) grid.schemes = parseSchemes(schemeSpec, errors);
  for (std::int64_t i = 0; i < seedCount; ++i)
    grid.seeds.push_back(grid.base.seed + static_cast<std::uint64_t>(i));
  if (!sweepSpec.empty()) grid.axes = parseAxes(sweepSpec, errors);

  if (!errors.empty()) {
    for (const auto& e : errors) std::cerr << "error: " << e << "\n";
    std::cerr << "\n" << args.helpText("dtncache_sweep");
    return 2;
  }

  // Parsed before mode dispatch so a typo'd filter fails in every mode.
  const obs::KindMask traceFilter = obs::parseKindFilter(traceFilterSpec);

  // Assemble a complete fragment store into the requested outputs, strictly
  // in job-index order — the bytes a single-process run would have written.
  const auto mergeStore = [&](const sweep::SweepManifest& manifest,
                              std::uint64_t sweepFp) {
    const sweep::FragmentStore store(storeDir);
    const auto units = sweep::workUnits(sweep::expandGrid(manifest.grid));
    std::ofstream jsonlFile, csvFile, traceFile;
    std::ostream* jsonl = jsonlPath.empty() ? nullptr : openSink(jsonlPath, jsonlFile);
    std::ostream* csv = csvPath.empty() ? nullptr : openSink(csvPath, csvFile);
    std::ostream* traceOut =
        traceOutPath.empty() ? nullptr : openSink(traceOutPath, traceFile);
    sweep::mergeFragments(store, sweepFp, units, jsonl, csv, traceOut);
    return units.size();
  };

  if (!workerSpec.empty()) {
    sweep::WorkerOptions workerOptions;
    std::string portText = workerSpec;
    const auto colon = workerSpec.rfind(':');
    if (colon != std::string::npos) {
      workerOptions.host = workerSpec.substr(0, colon);
      portText = workerSpec.substr(colon + 1);
    }
    if (portText.empty() ||
        portText.find_first_not_of("0123456789") != std::string::npos) {
      std::cerr << "error: --worker wants HOST:PORT, got '" << workerSpec << "'\n";
      return 2;
    }
    workerOptions.port = static_cast<std::uint16_t>(std::stoul(portText));
    workerOptions.quiet = quiet;
    const auto report = sweep::runWorkerClient(workerOptions);
    if (!quiet)
      std::cerr << "worker: " << report.completed << " job(s) completed, "
                << (report.sweepDone ? "sweep complete" : "coordinator gone") << "\n";
    return 0;
  }

  if (spoolWorkerMode) {
    sweep::SpoolWorkerOptions spoolOptions;
    spoolOptions.storeDir = storeDir;
    spoolOptions.leaseTimeout = leaseTimeout;
    spoolOptions.quiet = quiet;
    const auto report = sweep::runSpoolWorker(spoolOptions);
    if (!quiet)
      std::cerr << "spool-worker: " << report.completed << " job(s) completed"
                << (report.allDone ? ", store complete" : "") << "\n";
    return 0;
  }

  if (mergeMode) {
    const sweep::FragmentStore store(storeDir);
    const auto manifestText = store.readFile("manifest.txt");
    if (!manifestText.has_value()) {
      std::cerr << "error: no manifest.txt in " << storeDir << "\n";
      return 2;
    }
    const auto jobCount = mergeStore(sweep::decodeManifest(*manifestText),
                                     sweep::sweepFingerprint(*manifestText));
    if (!quiet) std::cerr << "merge: " << jobCount << " job(s) from " << storeDir << "\n";
    return 0;
  }

  // The remaining modes (and a plain run) describe the sweep themselves.
  sweep::SweepManifest manifest;
  manifest.grid = grid;
  manifest.wallClock = !noWall;
  manifest.traceEnabled = !traceOutPath.empty();
  manifest.traceFilter = traceFilter;

  if (spoolInitMode) {
    const auto jobCount = sweep::spoolInit(manifest, storeDir);
    if (!quiet)
      std::cerr << "spool store " << storeDir << " ready: " << jobCount
                << " job(s); run --spool-worker against it\n";
    return 0;
  }

  if (coordinatorMode) {
    sweep::CoordinatorOptions coordinatorOptions;
    coordinatorOptions.port = static_cast<std::uint16_t>(port);
    coordinatorOptions.storeDir = storeDir;
    coordinatorOptions.resume = resume;
    coordinatorOptions.leaseTimeout = leaseTimeout;
    coordinatorOptions.quiet = quiet;
    const auto report = sweep::runCoordinator(manifest, coordinatorOptions);
    mergeStore(manifest, sweep::sweepFingerprint(sweep::encodeManifest(manifest)));
    if (!quiet)
      std::cerr << "sweep: " << report.jobsTotal << " job(s) merged from " << storeDir
                << "\n";
    return 0;
  }

  const auto plan = sweep::expandGrid(grid);  // validates axis keys up front
  if (list) {
    for (const auto& job : plan) {
      std::cout << job.index << "  " << sweep::configFingerprint(job.config) << "  "
                << runner::schemeName(job.config.scheme) << "  seed="
                << job.config.seed;
      for (const auto& [key, value] : job.overrides)
        std::cout << "  " << key << "=" << value;
      std::cout << "\n";
    }
    std::cerr << plan.size() << " job(s)\n";
    return 0;
  }

  std::ofstream jsonlFile, csvFile;
  std::vector<std::unique_ptr<sweep::ResultSink>> owned;
  std::vector<sweep::ResultSink*> sinks;
  if (!jsonlPath.empty()) {
    owned.push_back(
        std::make_unique<sweep::JsonlSink>(*openSink(jsonlPath, jsonlFile), !noWall));
    sinks.push_back(owned.back().get());
  }
  if (!csvPath.empty()) {
    owned.push_back(
        std::make_unique<sweep::CsvSink>(*openSink(csvPath, csvFile), !noWall));
    sinks.push_back(owned.back().get());
  }

  sweep::SweepOptions options;
  options.jobs = static_cast<std::size_t>(jobs);
  options.progress = !quiet;
  options.traceFilter = traceFilter;
  std::ofstream traceFile;
  if (!traceOutPath.empty()) options.traceOut = openSink(traceOutPath, traceFile);
  sweep::SweepEngine engine(options);
  const auto results = engine.runJobs(plan, sinks);

  if (!quiet) {
    double wall = 0.0;
    for (const auto& r : results) wall += r.wallSeconds;
    std::cerr << "sweep: " << results.size() << " run(s), "
              << (jobs == 0 ? sweep::ThreadPool::defaultWorkers()
                            : static_cast<std::size_t>(jobs))
              << " worker(s), total simulated work "
              << static_cast<long>(wall * 1000.0) << " ms\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return runSweep(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
