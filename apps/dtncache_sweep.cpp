/// \file dtncache_sweep.cpp
/// Parameter-grid experiment driver on the parallel sweep engine.
///
/// Expands scheme × seed × knob axes over a base config (a config_io JSON
/// file or a trace preset), runs the grid on a thread pool, and emits one
/// JSONL record per run plus a CSV summary — deterministically ordered, so
/// `--jobs 8` output is byte-identical to `--jobs 1` apart from wall-clock
/// fields. Progress/ETA goes to stderr.
///
/// Examples:
///   dtncache_sweep --trace=infocom --schemes=all --seeds=5 --csv=-
///   dtncache_sweep --config=run.json --seeds=8 --jobs=8 --jsonl=out.jsonl
///   dtncache_sweep --trace=reality \
///     --sweep="hierarchical.replication.theta=0.5,0.7,0.9;catalog.refreshPeriodSeconds=43200,86400" \
///     --schemes=hierarchical --seeds=3 --csv=theta.csv
///   dtncache_sweep --trace=infocom --list   # print the expanded plan, run nothing

#include <cctype>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "obs/event.hpp"
#include "runner/args.hpp"
#include "runner/config_io.hpp"
#include "sweep/result_sink.hpp"
#include "trace/mobility.hpp"
#include "sweep/sweep_engine.hpp"
#include "sweep/thread_pool.hpp"

using namespace dtncache;

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string part;
  while (std::getline(in, part, sep))
    if (!part.empty()) parts.push_back(part);
  return parts;
}

std::vector<runner::SchemeKind> parseSchemes(const std::string& spec,
                                             std::vector<std::string>& errors) {
  if (spec == "all") return runner::allSchemes();
  std::vector<runner::SchemeKind> schemes;
  for (const auto& name : split(spec, ',')) {
    bool found = false;
    for (const auto kind : runner::allSchemes()) {
      std::string lower = runner::schemeName(kind);
      for (char& c : lower) c = static_cast<char>(std::tolower(c));
      if (lower == name) {
        schemes.push_back(kind);
        found = true;
        break;
      }
    }
    if (!found) errors.push_back("unknown scheme '" + name + "'");
  }
  return schemes;
}

/// "key=v1,v2;key2=w1" → axes. The '=' split is on the first '=' only.
std::vector<sweep::SweepAxis> parseAxes(const std::string& spec,
                                        std::vector<std::string>& errors) {
  std::vector<sweep::SweepAxis> axes;
  for (const auto& clause : split(spec, ';')) {
    const auto eq = clause.find('=');
    if (eq == std::string::npos || eq == 0) {
      errors.push_back("sweep clause '" + clause + "' is not key=v1,v2,...");
      continue;
    }
    sweep::SweepAxis axis;
    axis.key = clause.substr(0, eq);
    axis.values = split(clause.substr(eq + 1), ',');
    if (axis.values.empty()) {
      errors.push_back("sweep axis '" + axis.key + "' has no values");
      continue;
    }
    axes.push_back(std::move(axis));
  }
  return axes;
}

/// "-" means stdout; otherwise open the file (or die).
std::ostream* openSink(const std::string& path, std::ofstream& file) {
  if (path == "-") return &std::cout;
  file.open(path);
  if (!file.good()) {
    std::cerr << "error: cannot write " << path << "\n";
    std::exit(2);
  }
  return &file;
}

int runSweep(int argc, char** argv) {
  runner::ArgParser args(argc, argv);

  const std::string configFile =
      args.getString("--config", "", "base config JSON (config_io format)");
  const std::string traceName = args.getString(
      "--trace", "infocom",
      "preset base when no --config: reality | infocom | mobility");
  const auto nodesFlag = args.getInt(
      "--nodes", 0, "node count for the mobility preset (0 = preset default)");
  const double days =
      args.getDouble("--days", 0.0, "override trace duration in days (0 = preset)");
  const std::string schemeSpec = args.getString(
      "--schemes", "", "comma list of schemes, or 'all' (default: base config's)");
  const auto seedCount =
      args.getInt("--seeds", 1, "seed axis: base seed .. base seed + N - 1");
  const std::string sweepSpec = args.getString(
      "--sweep", "", "knob axes: \"key=v1,v2[;key2=w1,w2]\" (config_io dotted keys)");
  const auto jobs = args.getInt("--jobs", 0, "worker threads (0 = hardware cores)");
  const std::string jsonlPath =
      args.getString("--jsonl", "", "write one JSONL record per run ('-' = stdout)");
  const std::string csvPath =
      args.getString("--csv", "-", "write the CSV summary ('-' = stdout, '' = off)");
  const bool noWall =
      args.getBool("--no-wall", "omit wall-clock fields (byte-stable output)");
  const std::string traceOutPath = args.getString(
      "--trace-out", "", "write the merged JSONL event trace here ('-' = stdout)");
  const std::string traceFilterSpec = args.getString(
      "--trace-filter", "", "comma list of event kinds to keep (default: all)");
  const bool quiet = args.getBool("--quiet", "suppress progress/ETA on stderr");
  const bool list = args.getBool("--list", "print the expanded job plan and exit");

  if (args.helpRequested()) {
    std::cout << args.helpText("dtncache_sweep");
    return 0;
  }
  std::vector<std::string> errors = args.errors();
  if (seedCount < 1) errors.push_back("--seeds must be >= 1");
  if (jobs < 0) errors.push_back("--jobs must be >= 0");

  sweep::SweepGrid grid;
  if (!configFile.empty()) {
    grid.base = runner::loadConfigFile(configFile);
  } else if (traceName == "reality") {
    grid.base.trace = trace::realityLikeConfig();
    grid.base.catalog.refreshPeriod = sim::days(2);
    grid.base.workload.queriesPerNodePerDay = 1.0;
    grid.base.workload.queryDeadline = sim::days(1);
  } else if (traceName == "infocom") {
    grid.base.trace = trace::infocomLikeConfig();
    grid.base.catalog.refreshPeriod = sim::hours(6);
    grid.base.workload.queriesPerNodePerDay = 2.0;
    grid.base.workload.queryDeadline = sim::hours(3);
  } else if (traceName == "mobility") {
    grid.base.trace = trace::mobilityConfig(
        nodesFlag > 0 ? static_cast<std::size_t>(nodesFlag) : 1000);
    grid.base.catalog.refreshPeriod = sim::days(2);
    grid.base.workload.queriesPerNodePerDay = 1.0;
    grid.base.workload.queryDeadline = sim::days(1);
  } else {
    errors.push_back("unknown trace preset '" + traceName + "'");
  }
  if (days > 0.0) grid.base.trace.duration = sim::days(days);

  if (!schemeSpec.empty()) grid.schemes = parseSchemes(schemeSpec, errors);
  for (std::int64_t i = 0; i < seedCount; ++i)
    grid.seeds.push_back(grid.base.seed + static_cast<std::uint64_t>(i));
  if (!sweepSpec.empty()) grid.axes = parseAxes(sweepSpec, errors);

  if (!errors.empty()) {
    for (const auto& e : errors) std::cerr << "error: " << e << "\n";
    std::cerr << "\n" << args.helpText("dtncache_sweep");
    return 2;
  }

  const auto plan = sweep::expandGrid(grid);  // validates axis keys up front
  if (list) {
    for (const auto& job : plan) {
      std::cout << job.index << "  " << sweep::configFingerprint(job.config) << "  "
                << runner::schemeName(job.config.scheme) << "  seed="
                << job.config.seed;
      for (const auto& [key, value] : job.overrides)
        std::cout << "  " << key << "=" << value;
      std::cout << "\n";
    }
    std::cerr << plan.size() << " job(s)\n";
    return 0;
  }

  std::ofstream jsonlFile, csvFile;
  std::vector<std::unique_ptr<sweep::ResultSink>> owned;
  std::vector<sweep::ResultSink*> sinks;
  if (!jsonlPath.empty()) {
    owned.push_back(
        std::make_unique<sweep::JsonlSink>(*openSink(jsonlPath, jsonlFile), !noWall));
    sinks.push_back(owned.back().get());
  }
  if (!csvPath.empty()) {
    owned.push_back(
        std::make_unique<sweep::CsvSink>(*openSink(csvPath, csvFile), !noWall));
    sinks.push_back(owned.back().get());
  }

  sweep::SweepOptions options;
  options.jobs = static_cast<std::size_t>(jobs);
  options.progress = !quiet;
  // Parsed unconditionally so a typo'd filter fails even without --trace-out.
  options.traceFilter = obs::parseKindFilter(traceFilterSpec);  // throws on typos
  std::ofstream traceFile;
  if (!traceOutPath.empty()) options.traceOut = openSink(traceOutPath, traceFile);
  sweep::SweepEngine engine(options);
  const auto results = engine.runJobs(plan, sinks);

  if (!quiet) {
    double wall = 0.0;
    for (const auto& r : results) wall += r.wallSeconds;
    std::cerr << "sweep: " << results.size() << " run(s), "
              << (jobs == 0 ? sweep::ThreadPool::defaultWorkers()
                            : static_cast<std::size_t>(jobs))
              << " worker(s), total simulated work "
              << static_cast<long>(wall * 1000.0) << " ms\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return runSweep(argc, argv);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
