/// \file dtncache_sim.cpp
/// The dtncache command-line simulator: run any scheme on a preset or
/// imported contact trace and print (or CSV-emit) the full metric set.
///
/// Examples:
///   dtncache --trace=infocom --scheme=hierarchical --tau-hours=6
///   dtncache --trace=reality --scheme=flooding --days=21 --csv
///   dtncache --trace-file=contacts.csv --theta=0.95 --dot=hier.dot
///   dtncache --trace-one=one_events.txt --scheme=epidemic
///
/// Trace files: `--trace-file` takes the CSV contact format
/// (`start,duration,a,b`); `--trace-one` takes ONE-simulator connectivity
/// events — both accept real Reality/Infocom'06 exports.

#include <fstream>
#include <iostream>
#include <memory>
#include <optional>

#include "core/hierarchy_dot.hpp"
#include "metrics/load.hpp"
#include "metrics/report.hpp"
#include "obs/tracer.hpp"
#include "runner/args.hpp"
#include "runner/config_io.hpp"
#include "runner/experiment.hpp"
#include "sweep/sweep_engine.hpp"
#include "trace/mobility.hpp"
#include "trace/one_format.hpp"

using namespace dtncache;

namespace {

std::optional<runner::SchemeKind> parseScheme(const std::string& name) {
  for (const auto kind : runner::allSchemes()) {
    std::string lower = runner::schemeName(kind);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (lower == name) return kind;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  runner::ArgParser args(argc, argv);

  const std::string traceName = args.getString(
      "--trace", "infocom", "trace preset: reality | infocom | mobility");
  const auto nodesFlag =
      args.getInt("--nodes", 0, "node count for the mobility preset (0 = preset default)");
  const std::string traceFile =
      args.getString("--trace-file", "", "CSV contact trace to run instead of a preset");
  const std::string traceOne =
      args.getString("--trace-one", "", "ONE-format connectivity trace to run");
  const std::string schemeName = args.getString(
      "--scheme", "hierarchical",
      "hierarchical | norefresh | sourcedirect | pull | invalidation | epidemic | flooding");
  const double days = args.getDouble("--days", 0.0, "override trace duration in days (presets)");
  const double tauHours = args.getDouble("--tau-hours", 6.0, "refresh period per item");
  const double theta = args.getDouble("--theta", 0.9, "freshness requirement probability");
  const auto items = args.getInt("--items", 10, "catalog size");
  const auto cachingNodes = args.getInt("--caching-nodes", 8, "caching nodes per item (R)");
  const auto fanout = args.getInt("--fanout", 3, "hierarchy fanout bound");
  const double queries = args.getDouble("--queries-per-day", 2.0, "queries per node per day");
  const double deadlineHours =
      args.getDouble("--deadline-hours", 3.0, "query deadline in hours");
  const auto seed = args.getInt("--seed", 1, "master random seed");
  const bool oracle = args.getBool("--oracle-rates", "plan from true contact rates");
  const bool noRelays = args.getBool("--no-relays", "disable relay-assisted refresh");
  const double downtimeHours = args.getDouble(
      "--churn-downtime-hours", 0.0, "enable churn with this mean downtime (0 = off)");
  const bool csv = args.getBool("--csv", "emit one CSV row instead of tables");
  const std::string dotFile =
      args.getString("--dot", "", "write item 0's refresh hierarchy as Graphviz dot");
  const std::string configFile = args.getString(
      "--config", "", "load a JSON experiment config (flags below override it)");
  const bool dumpConfigFlag = args.getBool(
      "--dump-config", "print the effective config as JSON and exit (archivable run spec)");
  const std::string traceOutPath = args.getString(
      "--trace-out", "", "write the structured JSONL event trace here ('-' = stdout)");
  const std::string traceFilterSpec = args.getString(
      "--trace-filter", "", "comma list of event kinds to keep (default: all)");

  if (args.helpRequested()) {
    std::cout << args.helpText("dtncache");
    return 0;
  }
  const auto errors = args.errors();
  if (!errors.empty()) {
    for (const auto& e : errors) std::cerr << "error: " << e << "\n";
    std::cerr << "\n" << args.helpText("dtncache");
    return 2;
  }

  // With --config, only explicitly supplied flags override the file; on a
  // plain invocation every flag (or its default) applies.
  runner::ExperimentConfig config;
  const bool fromConfig = !configFile.empty();
  if (fromConfig) config = runner::loadConfigFile(configFile);
  const auto applies = [&](const char* flag) { return !fromConfig || args.provided(flag); };

  if (applies("--scheme")) {
    const auto scheme = parseScheme(schemeName);
    if (!scheme) {
      std::cerr << "error: unknown scheme '" << schemeName << "'\n";
      return 2;
    }
    config.scheme = *scheme;
  }

  std::optional<trace::ContactTrace> external;
  if (!traceFile.empty()) {
    external = trace::ContactTrace::loadCsv(traceFile);
  } else if (!traceOne.empty()) {
    auto imported = trace::loadOneConnectivityFile(traceOne);
    std::cerr << "imported ONE trace: " << imported.trace.nodeCount() << " hosts, "
              << imported.trace.contacts().size() << " contacts ("
              << imported.unmatchedDowns << " unmatched downs, "
              << imported.unterminatedUps << " unterminated ups)\n";
    external = std::move(imported.trace);
  } else if (applies("--trace")) {
    if (traceName == "reality") {
      config.trace = trace::realityLikeConfig(static_cast<std::uint64_t>(seed));
    } else if (traceName == "infocom") {
      config.trace = trace::infocomLikeConfig(static_cast<std::uint64_t>(seed));
    } else if (traceName == "mobility") {
      config.trace = trace::mobilityConfig(
          nodesFlag > 0 ? static_cast<std::size_t>(nodesFlag) : 1000,
          static_cast<std::uint64_t>(seed));
    } else {
      std::cerr << "error: unknown trace preset '" << traceName << "'\n";
      return 2;
    }
  }
  if (nodesFlag > 0 && traceName != "mobility" && !external)
    config.trace.nodeCount = static_cast<std::size_t>(nodesFlag);
  if (external) config.externalTrace = &*external;
  if (days > 0.0) config.trace.duration = sim::days(days);

  if (applies("--items")) config.catalog.itemCount = static_cast<std::size_t>(items);
  if (applies("--tau-hours")) config.catalog.refreshPeriod = sim::hours(tauHours);
  if (applies("--queries-per-day")) config.workload.queriesPerNodePerDay = queries;
  if (applies("--deadline-hours")) config.workload.queryDeadline = sim::hours(deadlineHours);
  if (applies("--caching-nodes"))
    config.cache.cachingNodesPerItem = static_cast<std::size_t>(cachingNodes);
  if (applies("--fanout"))
    config.hierarchical.hierarchy.fanoutBound = static_cast<std::size_t>(fanout);
  if (applies("--theta")) config.hierarchical.replication.theta = theta;
  if (applies("--oracle-rates"))
    config.hierarchical.useOracleRates = oracle && !external;  // oracle needs ground truth
  if (applies("--no-relays")) config.hierarchical.relayAssisted = !noRelays;
  if (applies("--seed")) config.seed = static_cast<std::uint64_t>(seed);
  if (downtimeHours > 0.0) {
    config.churnEnabled = true;
    config.churn.meanDowntime = sim::hours(downtimeHours);
  }

  if (dumpConfigFlag) {
    std::cout << runner::dumpConfig(config);
    return 0;
  }

  // Structured event tracing: one tracer for the whole run, labeled with
  // the config fingerprint (the same label a sweep would use), flushed
  // after the simulation so the hot path never touches the stream.
  std::ofstream traceOutFile;
  std::ostream* traceStream = nullptr;
  std::unique_ptr<obs::Tracer> tracer;
  obs::KindMask traceFilter = obs::kAllKinds;
  try {  // validate the filter even without --trace-out: typos never pass silently
    traceFilter = obs::parseKindFilter(traceFilterSpec);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
  if (!traceOutPath.empty()) {
    if (traceOutPath == "-") {
      traceStream = &std::cout;
    } else {
      traceOutFile.open(traceOutPath);
      if (!traceOutFile.good()) {
        std::cerr << "error: cannot write " << traceOutPath << "\n";
        return 2;
      }
      traceStream = &traceOutFile;
    }
    tracer = std::make_unique<obs::Tracer>(sweep::configFingerprint(config), traceFilter);
    config.tracer = tracer.get();
  }

  const auto out = runner::runExperiment(config);

  if (tracer != nullptr) {
    tracer->flushTo(*traceStream);
    traceStream->flush();
    std::cerr << "trace: " << tracer->eventCount() << " event(s)"
              << (traceOutPath == "-" ? "" : " -> " + traceOutPath) << "\n";
  }
  const auto& r = out.results;
  const auto load = metrics::loadStats(r.transfers.perNodeRefreshBytes());

  if (csv) {
    metrics::Table row(
        {"scheme", "mean_fresh", "final_fresh", "mean_valid", "within_tau", "issued",
         "answered_ratio", "valid_ratio", "fresh_answer_ratio", "mean_delay_s",
         "refresh_bytes", "control_bytes", "refresh_gini", "predicted_p", "helpers"});
    row.addRow({out.scheme, metrics::fmt(r.meanFreshFraction, 4),
                metrics::fmt(r.finalFreshFraction, 4), metrics::fmt(r.meanValidFraction, 4),
                metrics::fmt(r.refreshWithinPeriodRatio, 4),
                std::to_string(r.queries.issued), metrics::fmt(r.queries.answeredRatio(), 4),
                metrics::fmt(r.queries.successRatio(), 4),
                metrics::fmt(r.queries.freshAnswerRatio(), 4),
                metrics::fmt(r.queries.delay.mean(), 1),
                std::to_string(r.transfers.of(net::Traffic::kRefresh).bytes),
                std::to_string(r.transfers.of(net::Traffic::kControl).bytes),
                metrics::fmt(load.gini, 3), metrics::fmt(out.meanPredictedProbability, 4),
                std::to_string(out.replicationAssignments)});
    row.printCsv(std::cout);
  } else {
    std::cout << "scheme: " << out.scheme << "   trace: "
              << (external ? "external" : traceName) << " (" << out.traceStats.nodeCount
              << " nodes, " << metrics::fmt(sim::toDays(out.traceStats.duration), 1)
              << " days, " << out.traceStats.contactCount << " contacts)\n\n";
    metrics::Table table({"metric", "value"});
    table.addRow({"mean fresh fraction", metrics::fmt(r.meanFreshFraction)})
        .addRow({"mean valid fraction", metrics::fmt(r.meanValidFraction)})
        .addRow({"P(refresh within tau)", metrics::fmt(r.refreshWithinPeriodRatio)})
        .addRow({"queries issued", std::to_string(r.queries.issued)})
        .addRow({"answered ratio", metrics::fmt(r.queries.answeredRatio())})
        .addRow({"valid-answer ratio", metrics::fmt(r.queries.successRatio())})
        .addRow({"fresh-answer ratio", metrics::fmt(r.queries.freshAnswerRatio())})
        .addRow({"mean access delay (h)", metrics::fmt(sim::toHours(r.queries.delay.mean()), 2)})
        .addRow({"refresh traffic (MB)",
                 metrics::fmt(static_cast<double>(r.transfers.of(net::Traffic::kRefresh).bytes) /
                                  (1024.0 * 1024.0),
                              1)})
        .addRow({"refresh-load gini", metrics::fmt(load.gini, 2)});
    if (out.scheme == "Hierarchical") {
      table.addRow({"predicted P(refresh)", metrics::fmt(out.meanPredictedProbability)})
          .addRow({"replication helpers", std::to_string(out.replicationAssignments)})
          .addRow({"max tree depth", std::to_string(out.maxHierarchyDepth)});
    }
    if (config.churnEnabled) {
      table.addRow({"churn transitions", std::to_string(out.churnTransitions)})
          .addRow({"suppressed contacts", std::to_string(out.contactsSuppressed)})
          .addRow({"churn repairs", std::to_string(out.churnRepairs)});
    }
    table.print(std::cout);
  }

  if (!dotFile.empty()) {
    // Re-plan item 0's hierarchy outside the simulation for visualization.
    trace::SyntheticTrace world;
    if (external) {
      world.trace = *external;
      world.rates = trace::RateMatrix::fitFromTrace(world.trace);
    } else {
      auto tc = config.trace;
      tc.seed = tc.seed * 1000003 + config.seed;
      world = trace::generate(tc);
    }
    data::CatalogConfig cc = config.catalog;
    cc.nodeCount = world.trace.nodeCount();
    const auto catalog = data::makeUniformCatalog(cc);
    sim::Simulator simulator;
    net::Network network(simulator, world.trace);
    trace::EstimatorConfig ec;
    trace::ContactRateEstimator estimator(world.trace.nodeCount(), ec, 0.0);
    metrics::MetricsCollector collector(catalog, 0.0);
    cache::CooperativeCache coop(simulator, network, catalog, estimator, collector,
                                 world.rates, config.cache);
    const core::RateFn rate = [&world](NodeId i, NodeId j) { return world.rates.rate(i, j); };
    const auto h = core::RefreshHierarchy::build(
        catalog.spec(0).source, coop.cachingNodesOf(0), rate,
        catalog.spec(0).refreshPeriod, config.hierarchical.hierarchy);
    const auto plan = core::planReplication(h, rate, catalog.spec(0).refreshPeriod,
                                            config.hierarchical.replication);
    std::ofstream dot(dotFile);
    dot << core::toDot(h, &plan, rate, catalog.spec(0).refreshPeriod);
    std::cerr << "wrote " << dotFile << "\n";
  }
  return 0;
}
