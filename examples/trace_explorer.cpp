/// \file trace_explorer.cpp
/// Utility example: generate, inspect, export and re-import contact traces,
/// and check how well the closed-form contact model fits them.
///
///   ./build/examples/trace_explorer               # explore the presets
///   ./build/examples/trace_explorer mytrace.csv   # analyze a trace file
///
/// The CSV format (`start,duration,a,b`, seconds / node ids) is the drop-in
/// path for the real Reality / Infocom'06 traces if you have them; ONE-
/// format files go through apps/dtncache --trace-one.

#include <iostream>

#include "cache/centrality.hpp"
#include "metrics/report.hpp"
#include "trace/analysis.hpp"
#include "trace/estimator.hpp"
#include "trace/generators.hpp"

using namespace dtncache;

namespace {

void analyze(const std::string& name, const trace::ContactTrace& t) {
  const auto s = t.stats();
  std::cout << "\n== " << name << " ==\n"
            << "  nodes " << s.nodeCount << ", contacts " << s.contactCount << " over "
            << metrics::fmt(sim::toDays(s.duration), 1) << " days; "
            << metrics::fmt(s.meanContactsPerPairPerDay, 3) << " contacts/pair/day; "
            << s.pairsThatMet << " pairs ever met\n";

  // How exponential are the inter-contact times? This is the assumption
  // every analytical guarantee in the library rests on.
  const auto fit = trace::fitExponential(trace::allInterContactTimes(t));
  std::cout << "  inter-contact fit: mean gap "
            << metrics::fmt(sim::toHours(fit.meanGap), 1) << " h, CV "
            << metrics::fmt(fit.cv, 2) << " (exp: 1.00), KS distance "
            << metrics::fmt(fit.ksDistance, 3) << " over " << fit.samples << " gaps\n";

  // Activity skew: the case for caching at central nodes.
  const auto activity = trace::nodeActivity(t);
  std::cout << "  busiest node " << activity.front().node << ": "
            << metrics::fmt(activity.front().contactsPerDay, 1)
            << " contacts/day to " << activity.front().distinctPeers
            << " peers; median node: "
            << metrics::fmt(activity[activity.size() / 2].contactsPerDay, 1)
            << " contacts/day\n";

  // Where the cooperative cache would place data.
  const auto rates = trace::RateMatrix::fitFromTrace(t);
  const auto ncls = cache::selectNcls(rates, sim::hours(24), 5);
  std::cout << "  top-5 NCLs (greedy 24h-coverage): ";
  for (NodeId n : ncls) std::cout << n << ' ';
  std::cout << '\n';

  // Heavy-tail check: CCDF of pooled inter-contact gaps.
  const auto tail = trace::ccdf(trace::allInterContactTimes(t), 6);
  std::cout << "  gap CCDF (hours: P(gap>x)):";
  for (const auto& [x, p] : tail)
    std::cout << "  " << metrics::fmt(sim::toHours(x), 1) << "h:" << metrics::fmt(p, 2);
  std::cout << '\n';
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1) {
    const std::string path = argv[1];
    analyze(path, trace::ContactTrace::loadCsv(path));
    return 0;
  }

  const auto reality = trace::generate(trace::realityLikeConfig(1));
  const auto infocom = trace::generate(trace::infocomLikeConfig(1));
  analyze("reality-like preset", reality.trace);
  analyze("infocom-like preset", infocom.trace);

  // Round-trip demo: export, re-import, verify.
  const std::string out = "/tmp/dtncache_demo_trace.csv";
  infocom.trace.saveCsv(out);
  const auto back = trace::ContactTrace::loadCsv(out);
  std::cout << "\nCSV round-trip: wrote " << infocom.trace.contacts().size()
            << " contacts to " << out << ", read back " << back.contacts().size()
            << (back.contacts().size() == infocom.trace.contacts().size() ? " — OK\n"
                                                                          : " — MISMATCH\n");
  return 0;
}
