/// \file vehicular_updates.cpp
/// Scenario: a bus fleet sharing road-condition updates vehicle-to-vehicle.
/// Buses on the same routes meet often (communities), every bus goes to
/// the depot for shifts (churn), and congestion maps refresh every couple
/// of hours. The example compares the paper's scheme against gossip
/// invalidation under realistic churn, demonstrates the distributed
/// leave/join repair, and archives the exact run spec as JSON.
///
/// Build & run:  ./build/examples/vehicular_updates

#include <iostream>

#include "metrics/load.hpp"
#include "metrics/report.hpp"
#include "runner/config_io.hpp"
#include "runner/experiment.hpp"

using namespace dtncache;

namespace {

runner::ExperimentConfig fleetConfig() {
  runner::ExperimentConfig config;
  config.trace.nodeCount = 60;          // buses
  config.trace.duration = sim::days(5);
  config.trace.model = trace::RateModel::kCommunity;
  config.trace.communities = 6;         // routes
  config.trace.intraCommunityBoost = 6.0;
  config.trace.meanContactsPerPairPerDay = 3.0;
  config.trace.diurnal = true;
  config.trace.nightActivity = 0.05;    // depot at night
  config.trace.seed = 11;

  config.catalog.itemCount = 6;                   // one congestion map per district
  config.catalog.refreshPeriod = sim::hours(3);   // traffic changes fast
  config.catalog.itemSizeBytes = 30 * 1024;
  config.workload.queriesPerNodePerDay = 20.0;    // route planning is constant
  config.workload.queryDeadline = sim::hours(1);  // stale congestion info is useless soon
  config.cache.cachingNodesPerItem = 10;

  // Shift changes: a bus is out of service for ~4 h at a time.
  config.churnEnabled = true;
  config.churn.meanUptime = sim::hours(16);
  config.churn.meanDowntime = sim::hours(4);
  return config;
}

}  // namespace

int main() {
  std::cout << "Vehicular updates: 60 buses on 6 routes, congestion maps "
               "refreshed every 3 h,\nshift-change churn (16 h up / 4 h down).\n\n";

  metrics::Table table({"scheme", "valid_route_info", "got_current_map", "wait_min",
                        "refresh_MB", "duty_gini", "churn_repairs"});
  for (const auto kind :
       {runner::SchemeKind::kHierarchical, runner::SchemeKind::kInvalidation,
        runner::SchemeKind::kEpidemic, runner::SchemeKind::kNoRefresh}) {
    auto config = fleetConfig();
    config.scheme = kind;
    const auto out = runner::runExperiment(config);
    const auto& q = out.results.queries;
    const auto load =
        metrics::loadStats(out.results.transfers.perNodeRefreshBytes());
    table.addRow({out.scheme, metrics::fmt(q.successRatio()),
                  metrics::fmt(q.freshAnswerRatio() * q.answeredRatio()),
                  metrics::fmt(q.delay.mean() / 60.0, 1),
                  metrics::fmt(static_cast<double>(
                                   out.results.transfers.of(net::Traffic::kRefresh).bytes) /
                                   (1024.0 * 1024.0),
                               1),
                  metrics::fmt(load.gini, 2), std::to_string(out.churnRepairs)});
  }
  table.print(std::cout);

  std::cout << "\nThe hierarchy repairs itself across shift changes "
               "(churn_repairs column);\nrefresh duty stays spread across the "
               "fleet (low Gini) instead of burning\nthe same few buses.\n";

  // Archive the exact run spec — `dtncache --config=fleet.json` replays it.
  const std::string specPath = "/tmp/dtncache_fleet.json";
  auto config = fleetConfig();
  config.scheme = runner::SchemeKind::kHierarchical;
  runner::saveConfigFile(config, specPath);
  std::cout << "\nRun spec archived to " << specPath
            << " (replay: dtncache --config=" << specPath << ")\n";
  return 0;
}
