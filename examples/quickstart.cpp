/// \file quickstart.cpp
/// Minimal end-to-end use of the dtncache public API:
///   1. generate a Reality-like contact trace,
///   2. run the paper's hierarchical freshness-maintenance scheme over the
///      cooperative-caching substrate,
///   3. print freshness, query validity, and overhead, next to the
///      no-refresh baseline.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>
#include <iostream>

#include "metrics/report.hpp"
#include "runner/experiment.hpp"

int main() {
  using namespace dtncache;

  runner::ExperimentConfig config;
  config.trace = trace::infocomLikeConfig(/*seed=*/42);  // dense conference trace
  config.catalog.itemCount = 10;
  config.catalog.refreshPeriod = sim::hours(6);
  config.workload.queriesPerNodePerDay = 2.0;
  config.workload.queryDeadline = sim::hours(3);
  config.cache.cachingNodesPerItem = 8;
  config.hierarchical.replication.theta = 0.9;

  std::cout << "dtncache quickstart: 78-node Infocom-like trace, 4 days,\n"
               "10 items refreshed every 6 h, 8 caching nodes per item.\n\n";

  metrics::Table table({"scheme", "fresh_frac", "valid_answers", "mean_delay_h",
                        "refresh_MB"});
  double hierarchicalFresh = 0.0;
  double noneFresh = 0.0;
  for (const auto kind :
       {runner::SchemeKind::kHierarchical, runner::SchemeKind::kNoRefresh}) {
    config.scheme = kind;
    const auto out = runner::runExperiment(config);
    const auto& r = out.results;
    (kind == runner::SchemeKind::kHierarchical ? hierarchicalFresh : noneFresh) =
        r.meanFreshFraction;
    table.addRow({out.scheme, metrics::fmt(r.meanFreshFraction),
                  metrics::fmt(r.queries.successRatio()),
                  metrics::fmt(sim::toHours(r.queries.delay.mean()), 2),
                  metrics::fmt(static_cast<double>(r.transfers.of(net::Traffic::kRefresh).bytes) /
                                   (1024.0 * 1024.0),
                               1)});
  }
  table.print(std::cout);

  std::cout << "\nDistributed hierarchical refreshing keeps cached copies fresh "
            << metrics::fmt(hierarchicalFresh / noneFresh, 1)
            << "x as often as\nplain cooperative caching, which goes stale as soon"
               " as the first refresh\nperiod ends. See bench/ for the full"
               " evaluation and examples/ for scenarios.\n";
  return 0;
}
