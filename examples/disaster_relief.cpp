/// \file disaster_relief.cpp
/// Scenario: disaster-relief teams with hand-held radios and no surviving
/// infrastructure. A coordination node periodically refreshes situational
/// data (road status, shelter capacity, supply levels); field teams cache
/// and query it. Stale situational data is actively harmful, so the
/// freshness requirement θ is high, and this example shows how the
/// probabilistic-replication knob trades maintenance traffic for the
/// guarantee — including what the planner *predicts* it can achieve.
///
/// Build & run:  ./build/examples/disaster_relief

#include <iostream>

#include "metrics/report.hpp"
#include "runner/experiment.hpp"

using namespace dtncache;

namespace {

runner::ExperimentConfig reliefConfig() {
  runner::ExperimentConfig config;
  // Dense team mixing at a disaster site, strong sub-team structure.
  config.trace.nodeCount = 40;
  config.trace.duration = sim::days(7);
  config.trace.model = trace::RateModel::kCommunity;
  config.trace.communities = 5;  // five field teams
  config.trace.intraCommunityBoost = 3.0;  // teams mix at the staging area
  config.trace.meanContactsPerPairPerDay = 4.0;
  config.trace.diurnal = true;
  config.trace.nightActivity = 0.3;  // relief work slows, never stops
  config.trace.seed = 3;

  config.catalog.itemCount = 4;                   // road/shelter/supply/medical maps
  config.catalog.refreshPeriod = sim::hours(12);  // situation updates
  config.catalog.lifetimeFactor = 2.0;
  config.catalog.itemSizeBytes = 50 * 1024;
  config.workload.queriesPerNodePerDay = 12.0;    // teams consult maps constantly
  config.workload.queryDeadline = sim::hours(4);
  config.cache.cachingNodesPerItem = 9;
  // Analytically-planned mode: responsibilities only, so the θ guarantee is
  // exactly what the hypoexponential model predicts (relays would only add).
  config.hierarchical.relayAssisted = false;
  return config;
}

}  // namespace

int main() {
  std::cout << "Disaster relief: 40 radios in 5 field teams, situational maps\n"
               "refreshed every 12 h at the coordination nodes.\n\n";

  metrics::Table table({"theta", "predicted_P", "achieved_P", "helpers",
                        "maintenance_MB", "teams_got_valid_map"});
  for (double theta : {0.5, 0.8, 0.95}) {
    auto config = reliefConfig();
    config.scheme = runner::SchemeKind::kHierarchical;
    config.hierarchical.replication.theta = theta;
    const auto out = runner::runExperiment(config);
    table.addRow({metrics::fmt(theta, 2), metrics::fmt(out.meanPredictedProbability),
                  metrics::fmt(out.results.refreshWithinPeriodRatio),
                  std::to_string(out.replicationAssignments),
                  metrics::fmt(static_cast<double>(
                                   out.results.transfers.of(net::Traffic::kRefresh).bytes) /
                                   (1024.0 * 1024.0),
                               1),
                  metrics::fmt(out.results.queries.successRatio())});
  }
  table.print(std::cout);

  std::cout << "\nRaising theta buys refresh helpers: the achieved refresh "
               "probability climbs\nwith bounded extra maintenance traffic, and "
               "nearly every map consultation\nreturns valid (unexpired) data.\n\n";

  // Contrast with doing nothing — why freshness maintenance matters here.
  auto config = reliefConfig();
  config.scheme = runner::SchemeKind::kNoRefresh;
  const auto none = runner::runExperiment(config);
  std::cout << "Without refresh maintenance, only "
            << metrics::fmt(100.0 * none.results.queries.successRatio(), 1)
            << "% of map consultations return valid data ("
            << metrics::fmt(100.0 * none.results.queries.freshAnswerRatio(), 1)
            << "% of those current), versus the table above.\n";
  return 0;
}
