/// \file campus_news.cpp
/// Scenario: a campus news/podcast feed shared over Bluetooth between
/// students' phones — the motivating workload of the paper's introduction.
/// A handful of feeds update a few times per day; students query them with
/// Zipf-skewed interest; there is no cellular infrastructure. The example
/// contrasts what a reader experiences (validity and freshness of what
/// they get, access delay) with and without distributed freshness
/// maintenance, and shows the per-feed refresh hierarchy the scheme built.
///
/// Build & run:  ./build/examples/campus_news

#include <iostream>

#include "core/freshness.hpp"
#include "metrics/report.hpp"
#include "runner/experiment.hpp"

using namespace dtncache;

namespace {

runner::ExperimentConfig campusConfig() {
  runner::ExperimentConfig config;
  config.trace = trace::realityLikeConfig(/*seed=*/7);  // campus-like mobility
  config.trace.duration = sim::days(21);
  config.catalog.itemCount = 6;                 // six news feeds
  config.catalog.refreshPeriod = sim::days(1);  // daily editions
  config.catalog.lifetimeFactor = 2.0;          // yesterday's paper still readable
  config.catalog.itemSizeBytes = 200 * 1024;    // a feed bundle with images
  config.workload.queriesPerNodePerDay = 3.0;   // students check the news
  config.workload.zipfExponent = 1.0;           // campus headlines dominate
  config.workload.queryDeadline = sim::hours(8);
  config.cache.cachingNodesPerItem = 10;
  config.hierarchical.replication.theta = 0.9;
  return config;
}

}  // namespace

int main() {
  std::cout << "Campus news over an opportunistic network: 97 phones, 21 days,\n"
               "6 daily-refreshed feeds cached at the 10 most central phones.\n";

  metrics::Table table({"scheme", "readers_served", "got_current_edition",
                        "mean_wait_h", "maintenance_MB"});
  for (const auto kind :
       {runner::SchemeKind::kHierarchical, runner::SchemeKind::kSourceDirect,
        runner::SchemeKind::kNoRefresh}) {
    auto config = campusConfig();
    config.scheme = kind;
    const auto out = runner::runExperiment(config);
    const auto& q = out.results.queries;
    // "got_current_edition" is over ALL reads, not just served ones —
    // a scheme that serves few readers should not look fresher for it.
    table.addRow({out.scheme, metrics::fmt(q.successRatio()),
                  metrics::fmt(q.freshAnswerRatio() * q.answeredRatio()),
                  metrics::fmt(sim::toHours(q.delay.mean()), 1),
                  metrics::fmt(static_cast<double>(
                                   out.results.transfers.of(net::Traffic::kRefresh).bytes) /
                                   (1024.0 * 1024.0),
                               1)});
  }
  table.print(std::cout);

  // Peek inside: the refresh hierarchy of feed 0 under the paper's scheme.
  auto config = campusConfig();
  config.workload.queriesPerNodePerDay = 0.0;
  const auto world = trace::generate(config.trace);
  trace::ContactRateEstimator estimator(world.trace.nodeCount(), config.estimator, 0.0);
  for (const auto& c : world.trace.contacts()) estimator.recordContact(c.a, c.b, c.start);

  data::CatalogConfig catCfg = config.catalog;
  catCfg.nodeCount = world.trace.nodeCount();
  const auto catalog = data::makeUniformCatalog(catCfg);
  const NodeId source = catalog.spec(0).source;
  const auto rate = [&](NodeId i, NodeId j) { return world.rates.rate(i, j); };
  const auto members = [&] {
    // Recompute the caching set the substrate would choose.
    sim::Simulator sim;
    net::Network net(sim, world.trace);
    metrics::MetricsCollector col(catalog, 0.0);
    cache::CooperativeCache coop(sim, net, catalog, estimator, col, world.rates,
                                 config.cache);
    return coop.cachingNodesOf(0);
  }();
  const auto h = core::RefreshHierarchy::build(source, members, rate,
                                               catalog.spec(0).refreshPeriod,
                                               config.hierarchical.hierarchy);
  std::cout << "\nRefresh hierarchy for feed 0 (source: phone " << source << "):\n";
  for (NodeId n : h.membersBelowRoot()) {
    std::cout << "  phone " << n << "  <- refreshed by phone " << h.parentOf(n)
              << "  (depth " << h.depthOf(n) << ", P[refresh within a day] = "
              << metrics::fmt(core::chainRefreshProbability(
                     h.chainRates(n, rate), catalog.spec(0).refreshPeriod))
              << ")\n";
  }
  return 0;
}
