/// Experiment F14 (extension) — scaling with network size.
/// Sweep the node count at constant per-pair contact density and constant
/// caching-set size. Expected shape: the hierarchical scheme's freshness
/// is roughly size-invariant (its work is per caching set, not per
/// network), query validity improves slightly (more relays to route
/// through), and per-node refresh load *falls* with N (more carriers
/// share the relay duty) — the scheme scales out.

#include <iostream>

#include "bench/common.hpp"
#include "metrics/load.hpp"

using namespace dtncache;

int main() {
  bench::banner("F14", "scaling with network size (extension)");
  metrics::Table table({"nodes", "contacts", "mean_fresh", "within_tau",
                        "valid_answers", "refresh_KB_per_node"});
  for (std::size_t nodes : {40u, 80u, 120u, 200u}) {
    auto cfg = bench::infocomConfig();
    cfg.trace.nodeCount = nodes;
    cfg.trace.communities = std::max<std::size_t>(2, nodes / 20);
    cfg.scheme = runner::SchemeKind::kHierarchical;
    cfg.hierarchical.useOracleRates = true;
    const auto out = runner::runExperiment(cfg);
    const auto load = metrics::loadStats(out.results.transfers.perNodeRefreshBytes());
    table.addRow({std::to_string(nodes), std::to_string(out.traceStats.contactCount),
                  metrics::fmt(out.results.meanFreshFraction),
                  metrics::fmt(out.results.refreshWithinPeriodRatio),
                  metrics::fmt(out.results.queries.successRatio()),
                  metrics::fmt(load.meanBytes / 1024.0, 0)});
  }
  table.print(std::cout);
  std::cout << "\nCaching-set size is fixed at 8; density is fixed per pair, so\n"
               "total contacts grow ~quadratically while per-node refresh duty "
               "stays bounded.\n";
  return 0;
}
