/// Experiment F14 (extension) — scaling with network size.
/// Sweep the node count at constant per-pair contact density and constant
/// caching-set size. Expected shape: the hierarchical scheme's freshness
/// is roughly size-invariant (its work is per caching set, not per
/// network), query validity improves slightly (more relays to route
/// through), and per-node refresh load *falls* with N (more carriers
/// share the relay duty) — the scheme scales out.
///
/// The size points are independent simulations and run on the sweep
/// engine's thread pool (`--jobs N`); the table is identical at any jobs
/// count.

#include <algorithm>
#include <iostream>
#include <iterator>

#include "bench/common.hpp"
#include "metrics/load.hpp"

using namespace dtncache;

int main(int argc, char** argv) {
  const std::size_t jobs = bench::jobsArg(argc, argv);
  bench::banner("F14", "scaling with network size (extension)");

  constexpr std::size_t kNodeCounts[] = {40, 80, 120, 200};
  std::vector<runner::ExperimentConfig> configs;
  for (const std::size_t nodes : kNodeCounts) {
    auto cfg = bench::infocomConfig();
    cfg.trace.nodeCount = nodes;
    cfg.trace.communities = std::max<std::size_t>(2, nodes / 20);
    cfg.scheme = runner::SchemeKind::kHierarchical;
    cfg.hierarchical.useOracleRates = true;
    configs.push_back(cfg);
  }
  const auto outputs = sweep::runParallel(configs, jobs);

  metrics::Table table({"nodes", "contacts", "mean_fresh", "within_tau",
                        "valid_answers", "refresh_KB_per_node"});
  for (std::size_t i = 0; i < std::size(kNodeCounts); ++i) {
    const auto& out = outputs[i];
    const auto load = metrics::loadStats(out.results.transfers.perNodeRefreshBytes());
    table.addRow({std::to_string(kNodeCounts[i]),
                  std::to_string(out.traceStats.contactCount),
                  metrics::fmt(out.results.meanFreshFraction),
                  metrics::fmt(out.results.refreshWithinPeriodRatio),
                  metrics::fmt(out.results.queries.successRatio()),
                  metrics::fmt(load.meanBytes / 1024.0, 0)});
  }
  table.print(std::cout);
  std::cout << "\nCaching-set size is fixed at 8; density is fixed per pair, so\n"
               "total contacts grow ~quadratically while per-node refresh duty "
               "stays bounded.\n";
  return 0;
}
