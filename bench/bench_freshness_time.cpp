/// Experiment F2 — cache freshness over time, all schemes, both traces.
/// Paper analogue: the headline "freshness ratio" comparison. Expected
/// shape: Flooding ≥ Hierarchical ≫ SourceDirect ≈ Pull ≫ NoRefresh, with
/// Hierarchical close to the flooding ceiling at a fraction of its cost.

#include <iostream>

#include "bench/common.hpp"
#include "runner/replicate.hpp"

using namespace dtncache;

namespace {

void runScenario(const char* name, runner::ExperimentConfig base, std::size_t jobs) {
  std::cout << "\n--- " << name << " ---\n";
  metrics::Table summary({"scheme", "mean_fresh", "final_fresh", "mean_valid",
                          "refresh_within_tau", "refresh_MB"});
  std::vector<std::pair<std::string, sim::TimeSeries>> series;
  // One simulation per scheme — independent cells, pooled via the engine.
  std::vector<runner::ExperimentConfig> configs;
  for (const auto kind : runner::allSchemes()) {
    base.scheme = kind;
    configs.push_back(base);
  }
  for (const auto& out : sweep::runParallel(configs, jobs)) {
    const auto& r = out.results;
    summary.addRow({out.scheme, metrics::fmt(r.meanFreshFraction),
                    metrics::fmt(r.finalFreshFraction), metrics::fmt(r.meanValidFraction),
                    metrics::fmt(r.refreshWithinPeriodRatio),
                    bench::mb(r.transfers.of(net::Traffic::kRefresh).bytes)});
    series.push_back({out.scheme, r.freshOverTime});
  }
  summary.print(std::cout);

  // Plot-ready CSV next to the printed table.
  std::string slug = name;
  slug = slug.substr(0, slug.find(' '));
  const std::string csvPath = "/tmp/dtncache_f2_" + slug + ".csv";
  metrics::writeTimeSeriesCsv(csvPath, series);
  std::cout << "\n(full series written to " << csvPath << ")\n";

  // Time series, downsampled to 12 points per scheme (plot data).
  std::cout << "\nfreshness(t) series (fraction, sampled):\n";
  std::vector<std::string> headers{"t_days"};
  for (const auto& [name2, s] : series) headers.push_back(name2);
  metrics::Table ts(headers);
  const auto base0 = series.front().second.resampled(12);
  for (std::size_t i = 0; i < base0.size(); ++i) {
    std::vector<std::string> row{metrics::fmt(sim::toDays(base0[i].time), 1)};
    for (const auto& [name2, s] : series) {
      const auto pts = s.resampled(12);
      row.push_back(i < pts.size() ? metrics::fmt(pts[i].value) : "-");
    }
    ts.addRow(row);
  }
  ts.print(std::cout);
}

}  // namespace

void seedSweep(const char* name, const runner::ExperimentConfig& base, std::size_t seeds,
               std::size_t jobs) {
  std::cout << "\n--- " << name << ": headline numbers over " << seeds
            << " seeds (mean±sd) ---\n";
  metrics::Table table({"scheme", "mean_fresh", "valid_answers", "refresh_MB"});
  for (const auto kind : runner::allSchemes()) {
    auto cfg = base;
    cfg.scheme = kind;
    const auto agg = runner::runReplicated(cfg, seeds, jobs);
    table.addRow({runner::schemeName(kind), runner::formatMeanSd(agg.meanFresh),
                  runner::formatMeanSd(agg.validAnswerRatio),
                  runner::formatMeanSd(agg.refreshMegabytes, 1)});
  }
  table.print(std::cout);
}

int main(int argc, char** argv) {
  const std::size_t jobs = bench::jobsArg(argc, argv);
  bench::banner("F2", "freshness ratio over time (all schemes)");
  runScenario("reality-like (tau = 2 days)", bench::realityConfig(), jobs);
  runScenario("infocom-like (tau = 6 h)", bench::infocomConfig(), jobs);
  // Single-trace numbers above are points; the sweep shows they are stable
  // across mobility realizations (every random process re-drawn per seed).
  seedSweep("infocom-like", bench::infocomConfig(), 5, jobs);
  return 0;
}
