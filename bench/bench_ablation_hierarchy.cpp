/// Experiment F8 — ablations of the hierarchy design choices.
///  (a) fanout bound F: small F bounds per-node responsibility but deepens
///      the tree (late versions at the leaves); large F approaches a flat
///      star where the source does all the work.
///  (b) depth-aware vs naive attachment.
///  (c) maintenance mode: rebuild / local-repair / static, under estimated
///      (non-oracle) rates where repair actually matters.
///  (d) relay-assisted delivery on/off.

#include <iostream>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

runner::ExperimentOutput run(runner::ExperimentConfig cfg) {
  cfg.scheme = runner::SchemeKind::kHierarchical;
  return runner::runExperiment(cfg);
}

void fanoutSweep(const char* name, const runner::ExperimentConfig& base, bool relays) {
  std::cout << "\n--- " << name << ": fanout bound F (relays " << (relays ? "on" : "off")
            << ") ---\n";
  metrics::Table table({"fanout", "mean_fresh", "within_tau", "tree_depth", "refresh_MB"});
  for (std::size_t f : {1u, 2u, 3u, 5u, 8u}) {
    auto cfg = base;
    cfg.hierarchical.hierarchy.fanoutBound = f;
    cfg.hierarchical.useOracleRates = true;
    cfg.hierarchical.relayAssisted = relays;
    const auto out = run(cfg);
    table.addRow({std::to_string(f), metrics::fmt(out.results.meanFreshFraction),
                  metrics::fmt(out.results.refreshWithinPeriodRatio),
                  std::to_string(out.maxHierarchyDepth),
                  bench::mb(out.results.transfers.of(net::Traffic::kRefresh).bytes)});
  }
  table.print(std::cout);
}

void attachmentModel(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name << ": depth-aware vs naive attachment ---\n";
  metrics::Table table({"attachment", "mean_fresh", "within_tau", "tree_depth"});
  for (const bool aware : {true, false}) {
    auto cfg = base;
    cfg.hierarchical.hierarchy.depthAware = aware;
    cfg.hierarchical.useOracleRates = true;
    cfg.hierarchical.relayAssisted = false;  // expose the raw tree quality
    const auto out = run(cfg);
    table.addRow({aware ? "depth-aware" : "naive",
                  metrics::fmt(out.results.meanFreshFraction),
                  metrics::fmt(out.results.refreshWithinPeriodRatio),
                  std::to_string(out.maxHierarchyDepth)});
  }
  table.print(std::cout);
}

void maintenanceModes(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name << ": maintenance under estimated rates ---\n";
  metrics::Table table({"maintenance", "mean_fresh", "within_tau", "reparents"});
  for (const auto& [mode, label] :
       {std::pair{core::MaintenanceMode::kRebuild, "rebuild"},
        std::pair{core::MaintenanceMode::kLocalRepair, "local-repair"},
        std::pair{core::MaintenanceMode::kStatic, "static"}}) {
    auto cfg = base;
    cfg.hierarchical.maintenance = mode;
    cfg.hierarchical.useOracleRates = false;  // estimator-driven: repair matters
    const auto out = run(cfg);
    table.addRow({label, metrics::fmt(out.results.meanFreshFraction),
                  metrics::fmt(out.results.refreshWithinPeriodRatio),
                  std::to_string(out.reparentCount)});
  }
  table.print(std::cout);
}

void contactLoss(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name << ": robustness to contact loss ---\n";
  metrics::Table table({"loss_rate", "mean_fresh", "within_tau", "valid_answers"});
  for (double loss : {0.0, 0.1, 0.3, 0.5}) {
    auto cfg = base;
    cfg.scheme = runner::SchemeKind::kHierarchical;
    cfg.hierarchical.useOracleRates = true;
    cfg.network.contactLossRate = loss;
    const auto out = runner::runExperiment(cfg);
    table.addRow({metrics::fmt(loss, 1), metrics::fmt(out.results.meanFreshFraction),
                  metrics::fmt(out.results.refreshWithinPeriodRatio),
                  metrics::fmt(out.results.queries.successRatio())});
  }
  table.print(std::cout);
}

void relayAssist(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name << ": relay-assisted delivery ---\n";
  metrics::Table table({"relays", "mean_fresh", "within_tau", "refresh_MB"});
  for (const bool relays : {true, false}) {
    auto cfg = base;
    cfg.hierarchical.relayAssisted = relays;
    cfg.hierarchical.useOracleRates = true;
    const auto out = run(cfg);
    table.addRow({relays ? "on" : "off", metrics::fmt(out.results.meanFreshFraction),
                  metrics::fmt(out.results.refreshWithinPeriodRatio),
                  bench::mb(out.results.transfers.of(net::Traffic::kRefresh).bytes)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("F8", "hierarchy design ablations");
  fanoutSweep("infocom-like", bench::infocomConfig(), true);
  // Raw tree quality is visible only when relays cannot paper over weak
  // edges — the sparse trace with relays off is where structure matters.
  fanoutSweep("infocom-like", bench::infocomConfig(), false);
  attachmentModel("infocom-like", bench::infocomConfig());
  attachmentModel("reality-like", bench::realityConfig());
  maintenanceModes("infocom-like", bench::infocomConfig());
  relayAssist("reality-like", bench::realityConfig());
  contactLoss("infocom-like", bench::infocomConfig());
  return 0;
}
