/// Experiment F6 — maintenance overhead.
/// Paper analogue: the cost side of the headline claim. Reports refresh
/// bytes/messages per scheme (and the full per-category traffic breakdown
/// for the hierarchical scheme), plus overhead vs θ: tightening the
/// freshness requirement buys helpers, whose cost grows super-linearly as
/// θ → 1.

#include <iostream>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

void schemeOverhead(const char* name, runner::ExperimentConfig base) {
  std::cout << "\n--- " << name << ": per-scheme refresh overhead ---\n";
  metrics::Table table({"scheme", "mean_fresh", "refresh_MB", "refresh_msgs",
                        "MB_per_fresh_point"});
  for (const auto kind : runner::allSchemes()) {
    base.scheme = kind;
    const auto out = runner::runExperiment(base);
    const auto& refresh = out.results.transfers.of(net::Traffic::kRefresh);
    const double megabytes = static_cast<double>(refresh.bytes) / (1024.0 * 1024.0);
    const double fresh = out.results.meanFreshFraction;
    table.addRow({out.scheme, metrics::fmt(fresh), bench::mb(refresh.bytes),
                  std::to_string(refresh.messages),
                  fresh > 0.01 ? metrics::fmt(megabytes / (100.0 * fresh), 2) : "-"});
  }
  table.print(std::cout);
}

void categoryBreakdown(const char* name, runner::ExperimentConfig base) {
  std::cout << "\n--- " << name << ": hierarchical traffic breakdown ---\n";
  base.scheme = runner::SchemeKind::kHierarchical;
  const auto out = runner::runExperiment(base);
  metrics::Table table({"category", "messages", "MB"});
  for (const auto cat : {net::Traffic::kControl, net::Traffic::kRefresh,
                         net::Traffic::kPlacement, net::Traffic::kQuery,
                         net::Traffic::kReply, net::Traffic::kPull}) {
    const auto& c = out.results.transfers.of(cat);
    table.addRow({net::trafficName(cat), std::to_string(c.messages), bench::mb(c.bytes)});
  }
  table.print(std::cout);
}

void overheadVsTheta(const char* name, runner::ExperimentConfig base) {
  std::cout << "\n--- " << name << ": refresh overhead vs theta ---\n";
  metrics::Table table({"theta", "helpers", "refresh_MB", "achieved"});
  for (double theta : {0.5, 0.7, 0.9, 0.95, 0.99}) {
    auto cfg = base;
    cfg.scheme = runner::SchemeKind::kHierarchical;
    cfg.hierarchical.replication.theta = theta;
    cfg.hierarchical.useOracleRates = true;
    const auto out = runner::runExperiment(cfg);
    table.addRow({metrics::fmt(theta, 2), std::to_string(out.replicationAssignments),
                  bench::mb(out.results.transfers.of(net::Traffic::kRefresh).bytes),
                  metrics::fmt(out.results.refreshWithinPeriodRatio)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("F6", "freshness-maintenance overhead");
  schemeOverhead("infocom-like", bench::infocomConfig());
  categoryBreakdown("infocom-like", bench::infocomConfig());
  overheadVsTheta("infocom-like", bench::infocomConfig());
  schemeOverhead("reality-like", bench::realityConfig());
  return 0;
}
