/// Experiment F7 — data-access validity vs query load.
/// Paper analogue: "ensures the validity of data access provided to mobile
/// users." Sweeps the per-node query rate and reports the valid-answer
/// ratio, the fraction of answers that were fresh, and the mean access
/// delay. Expected shape: validity is roughly load-independent (caches,
/// not queues, dominate) and ordered by each scheme's freshness.

#include <iostream>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

void runScenario(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name << " ---\n";
  metrics::Table table({"queries_per_node_day", "scheme", "answered", "valid",
                        "fresh_answers", "mean_delay_h", "max_delay_h"});
  for (double rate : {0.5, 2.0, 8.0}) {
    for (const auto kind :
         {runner::SchemeKind::kHierarchical, runner::SchemeKind::kNoRefresh,
          runner::SchemeKind::kSourceDirect, runner::SchemeKind::kEpidemic}) {
      auto cfg = base;
      cfg.scheme = kind;
      cfg.workload.queriesPerNodePerDay = rate;
      const auto out = runner::runExperiment(cfg);
      const auto& q = out.results.queries;
      table.addRow({metrics::fmt(rate, 1), out.scheme, metrics::fmt(q.answeredRatio()),
                    metrics::fmt(q.successRatio()), metrics::fmt(q.freshAnswerRatio()),
                    metrics::fmt(sim::toHours(q.delay.mean()), 2),
                    metrics::fmt(sim::toHours(q.delay.max()), 2)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("F7", "query validity and access delay vs load");
  runScenario("infocom-like", bench::infocomConfig());
  runScenario("reality-like", bench::realityConfig());
  return 0;
}
