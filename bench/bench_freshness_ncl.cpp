/// Experiment F4 — impact of the number of caching nodes per item (R).
/// Paper analogue: scaling the caching-node set. Expected shape: more
/// caching nodes increase query answerability but dilute freshness for the
/// weaker schemes (more copies to keep fresh); the hierarchical scheme
/// holds freshness by growing the tree, at proportional refresh cost.
///
/// Grid cells (R × scheme) run on the sweep engine's thread pool
/// (`--jobs N`); the table is identical at any jobs count.

#include <iostream>
#include <iterator>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

constexpr std::size_t kCachingNodes[] = {4, 8, 12, 16};
constexpr runner::SchemeKind kSchemes[] = {runner::SchemeKind::kHierarchical,
                                           runner::SchemeKind::kSourceDirect,
                                           runner::SchemeKind::kEpidemic};

void runScenario(const char* name, const runner::ExperimentConfig& base,
                 std::size_t jobs) {
  std::cout << "\n--- " << name << " ---\n";
  std::vector<runner::ExperimentConfig> configs;
  for (const std::size_t r : kCachingNodes) {
    for (const auto kind : kSchemes) {
      auto cfg = base;
      cfg.scheme = kind;
      cfg.cache.cachingNodesPerItem = r;
      configs.push_back(cfg);
    }
  }
  const auto outputs = sweep::runParallel(configs, jobs);

  metrics::Table table({"caching_nodes", "scheme", "mean_fresh", "valid_answers",
                        "answered", "refresh_MB", "tree_depth"});
  std::size_t next = 0;
  for (const std::size_t r : kCachingNodes) {
    for (std::size_t s = 0; s < std::size(kSchemes); ++s) {
      const auto& out = outputs[next++];
      table.addRow({std::to_string(r), out.scheme,
                    metrics::fmt(out.results.meanFreshFraction),
                    metrics::fmt(out.results.queries.successRatio()),
                    metrics::fmt(out.results.queries.answeredRatio()),
                    bench::mb(out.results.transfers.of(net::Traffic::kRefresh).bytes),
                    std::to_string(out.maxHierarchyDepth)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench::jobsArg(argc, argv);
  bench::banner("F4", "freshness & access vs caching-node count R");
  runScenario("reality-like", bench::realityConfig(), jobs);
  runScenario("infocom-like", bench::infocomConfig(), jobs);
  return 0;
}
