/// Experiment F4 — impact of the number of caching nodes per item (R).
/// Paper analogue: scaling the caching-node set. Expected shape: more
/// caching nodes increase query answerability but dilute freshness for the
/// weaker schemes (more copies to keep fresh); the hierarchical scheme
/// holds freshness by growing the tree, at proportional refresh cost.

#include <iostream>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

void runScenario(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name << " ---\n";
  metrics::Table table({"caching_nodes", "scheme", "mean_fresh", "valid_answers",
                        "answered", "refresh_MB", "tree_depth"});
  for (std::size_t r : {4u, 8u, 12u, 16u}) {
    for (const auto kind : {runner::SchemeKind::kHierarchical,
                            runner::SchemeKind::kSourceDirect,
                            runner::SchemeKind::kEpidemic}) {
      auto cfg = base;
      cfg.scheme = kind;
      cfg.cache.cachingNodesPerItem = r;
      const auto out = runner::runExperiment(cfg);
      table.addRow({std::to_string(r), out.scheme,
                    metrics::fmt(out.results.meanFreshFraction),
                    metrics::fmt(out.results.queries.successRatio()),
                    metrics::fmt(out.results.queries.answeredRatio()),
                    bench::mb(out.results.transfers.of(net::Traffic::kRefresh).bytes),
                    std::to_string(out.maxHierarchyDepth)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("F4", "freshness & access vs caching-node count R");
  runScenario("reality-like", bench::realityConfig());
  runScenario("infocom-like", bench::infocomConfig());
  return 0;
}
