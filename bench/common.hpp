#pragma once

/// \file common.hpp
/// Shared configuration for the experiment harnesses (bench_*). Each bench
/// reproduces one table/figure of the paper (see DESIGN.md / EXPERIMENTS.md);
/// they all start from these two trace scenarios so results are comparable
/// across experiments.
///
/// Refresh periods are scaled to trace density (as the paper scales its
/// TTLs per trace): the Reality-like campus trace is ~40x sparser than the
/// Infocom-like conference trace, so items refresh every 2 days vs 6 hours.

#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <string>

#include "metrics/report.hpp"
#include "runner/args.hpp"
#include "runner/experiment.hpp"
#include "sweep/sweep_engine.hpp"
#include "trace/mobility.hpp"

namespace dtncache::bench {

/// `--jobs N` for the sweep-backed benches (0 = one worker per hardware
/// core). Cells of an experiment grid are independent simulations; the
/// sweep engine aggregates them in grid order, so the printed tables are
/// identical at any jobs count — only wall-clock changes.
inline std::size_t jobsArg(int argc, char** argv) {
  runner::ArgParser args(argc, argv);
  const auto jobs = args.getInt("--jobs", 0, "worker threads (0 = hardware cores)");
  if (args.helpRequested()) {
    std::cout << args.helpText(argv[0]);
    std::exit(0);
  }
  for (const auto& e : args.errors()) std::cerr << "warning: " << e << "\n";
  return jobs < 0 ? 0 : static_cast<std::size_t>(jobs);
}

inline runner::ExperimentConfig realityConfig(std::uint64_t seed = 1) {
  runner::ExperimentConfig c;
  c.trace = trace::realityLikeConfig(seed);
  c.catalog.itemCount = 10;
  c.catalog.refreshPeriod = sim::days(2);
  c.workload.queriesPerNodePerDay = 1.0;
  c.workload.queryDeadline = sim::days(1);
  c.cache.cachingNodesPerItem = 8;
  c.seed = seed;
  return c;
}

inline runner::ExperimentConfig infocomConfig(std::uint64_t seed = 1) {
  runner::ExperimentConfig c;
  c.trace = trace::infocomLikeConfig(seed);
  c.catalog.itemCount = 10;
  c.catalog.refreshPeriod = sim::hours(6);
  c.workload.queriesPerNodePerDay = 2.0;
  c.workload.queryDeadline = sim::hours(3);
  c.cache.cachingNodesPerItem = 8;
  c.seed = seed;
  return c;
}

/// Large-N scaling scenario: streamed sparse mobility (trace/mobility.hpp)
/// with the experiment knobs sized so the run is bounded by the sparse data
/// structures, not the catalog. The node count is the whole point — pass
/// 50'000+ to exercise the sparse pair-state backend end to end (see
/// docs/scaling.md for the cost model).
inline runner::ExperimentConfig mobilityExperimentConfig(std::size_t nodes,
                                                         std::uint64_t seed = 1) {
  runner::ExperimentConfig c;
  c.trace = trace::mobilityConfig(nodes, seed);
  c.trace.duration = sim::days(2);
  c.catalog.itemCount = 10;
  c.catalog.refreshPeriod = sim::hours(12);
  c.workload.queriesPerNodePerDay = 0.2;
  c.workload.queryDeadline = sim::hours(12);
  c.cache.cachingNodesPerItem = 8;
  c.estimatorWarmup = sim::days(2);
  c.seed = seed;
  return c;
}

inline std::string mb(std::uint64_t bytes) {
  return metrics::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

}  // namespace dtncache::bench
