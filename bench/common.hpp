#pragma once

/// \file common.hpp
/// Shared configuration for the experiment harnesses (bench_*). Each bench
/// reproduces one table/figure of the paper (see DESIGN.md / EXPERIMENTS.md);
/// they all start from these two trace scenarios so results are comparable
/// across experiments.
///
/// Refresh periods are scaled to trace density (as the paper scales its
/// TTLs per trace): the Reality-like campus trace is ~40x sparser than the
/// Infocom-like conference trace, so items refresh every 2 days vs 6 hours.

#include <cstdint>
#include <iostream>
#include <string>

#include "metrics/report.hpp"
#include "runner/experiment.hpp"

namespace dtncache::bench {

inline runner::ExperimentConfig realityConfig(std::uint64_t seed = 1) {
  runner::ExperimentConfig c;
  c.trace = trace::realityLikeConfig(seed);
  c.catalog.itemCount = 10;
  c.catalog.refreshPeriod = sim::days(2);
  c.workload.queriesPerNodePerDay = 1.0;
  c.workload.queryDeadline = sim::days(1);
  c.cache.cachingNodesPerItem = 8;
  c.seed = seed;
  return c;
}

inline runner::ExperimentConfig infocomConfig(std::uint64_t seed = 1) {
  runner::ExperimentConfig c;
  c.trace = trace::infocomLikeConfig(seed);
  c.catalog.itemCount = 10;
  c.catalog.refreshPeriod = sim::hours(6);
  c.workload.queriesPerNodePerDay = 2.0;
  c.workload.queryDeadline = sim::hours(3);
  c.cache.cachingNodesPerItem = 8;
  c.seed = seed;
  return c;
}

inline std::string mb(std::uint64_t bytes) {
  return metrics::fmt(static_cast<double>(bytes) / (1024.0 * 1024.0), 1);
}

inline void banner(const std::string& id, const std::string& title) {
  std::cout << "\n=== " << id << ": " << title << " ===\n";
}

}  // namespace dtncache::bench
