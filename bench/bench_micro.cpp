/// Hot-path microbenchmarks (google-benchmark): the costs that bound
/// simulation throughput and, in a deployment, per-contact CPU work on a
/// mobile device — hierarchy construction, replication planning, the
/// hypoexponential closed forms, and event-queue throughput.

#include <benchmark/benchmark.h>

#include "cache/centrality.hpp"
#include "core/freshness.hpp"
#include "core/hierarchy.hpp"
#include "core/replication.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "trace/generators.hpp"

using namespace dtncache;

namespace {

trace::RateMatrix randomRates(std::size_t n, std::uint64_t seed) {
  sim::Rng rng(seed);
  trace::RateMatrix m(n);
  for (NodeId i = 0; i < n; ++i)
    for (NodeId j = i + 1; j < n; ++j)
      if (rng.bernoulli(0.7)) m.setRate(i, j, rng.uniform(1e-6, 1e-3));
  return m;
}

void BM_HypoexponentialCdf(benchmark::State& state) {
  const auto stages = static_cast<std::size_t>(state.range(0));
  std::vector<double> rates;
  sim::Rng rng(1);
  for (std::size_t i = 0; i < stages; ++i) rates.push_back(rng.uniform(0.1, 2.0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hypoexponentialCdf(rates, 1.5));
  }
}
BENCHMARK(BM_HypoexponentialCdf)->Arg(2)->Arg(4)->Arg(8);

void BM_HierarchyBuild(benchmark::State& state) {
  const auto members = static_cast<std::size_t>(state.range(0));
  const auto m = randomRates(members + 1, 7);
  std::vector<NodeId> ms;
  for (NodeId i = 1; i <= members; ++i) ms.push_back(i);
  const core::RateFn rate = [&m](NodeId a, NodeId b) { return m.rate(a, b); };
  core::HierarchyConfig cfg;
  cfg.fanoutBound = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::RefreshHierarchy::build(0, ms, rate, sim::hours(6), cfg));
  }
}
BENCHMARK(BM_HierarchyBuild)->Arg(8)->Arg(16)->Arg(32);

void BM_ReplicationPlan(benchmark::State& state) {
  const auto members = static_cast<std::size_t>(state.range(0));
  const auto m = randomRates(members + 1, 11);
  std::vector<NodeId> ms;
  for (NodeId i = 1; i <= members; ++i) ms.push_back(i);
  const core::RateFn rate = [&m](NodeId a, NodeId b) { return m.rate(a, b); };
  core::HierarchyConfig hcfg;
  hcfg.fanoutBound = 3;
  const auto h = core::RefreshHierarchy::build(0, ms, rate, sim::hours(6), hcfg);
  core::ReplicationConfig rcfg;
  rcfg.theta = 0.95;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::planReplication(h, rate, sim::hours(6), rcfg));
  }
}
BENCHMARK(BM_ReplicationPlan)->Arg(8)->Arg(16)->Arg(32);

void BM_NclSelection(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto m = randomRates(n, 13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache::selectNcls(m, sim::hours(24), 8));
  }
}
BENCHMARK(BM_NclSelection)->Arg(50)->Arg(100);

void BM_EventQueueThroughput(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventQueue q;
    for (int i = 0; i < 1000; ++i)
      q.schedule(static_cast<double>((i * 7919) % 1000), [](sim::SimTime) {});
    while (!q.empty()) q.runNext();
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueueThroughput);

void BM_TraceGeneration(benchmark::State& state) {
  auto cfg = trace::infocomLikeConfig(1);
  for (auto _ : state) {
    cfg.seed++;
    benchmark::DoNotOptimize(trace::generate(cfg));
  }
}
BENCHMARK(BM_TraceGeneration);

}  // namespace

BENCHMARK_MAIN();
