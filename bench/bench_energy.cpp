/// Experiment F12 (extension) — energy cost and network lifetime.
/// Mobile devices pay for freshness in battery. With a fixed per-device
/// energy budget, aggressive dissemination kills nodes: this bench sweeps
/// the budget and reports dead nodes, time of first death, residual
/// battery, and the freshness/validity actually delivered. It also runs
/// the battery-aware planning arm (helper selection weighted by remaining
/// charge), which shifts refresh duty off drained nodes.
/// Expected shape: flooding buys its freshness ceiling with the most
/// deaths under tight budgets; the hierarchical scheme delivers most of
/// the freshness at materially higher residual battery; battery-aware
/// planning postpones the first death.

#include <cmath>
#include <iostream>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

std::string deathDay(sim::SimTime t) {
  return std::isinf(t) ? "-" : metrics::fmt(sim::toDays(t), 2);
}

void budgetSweep(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name << ": battery budget sweep ---\n";
  metrics::Table table({"battery_J", "scheme", "mean_fresh", "valid_answers",
                        "dead_nodes", "first_death_day", "mean_residual"});
  for (double battery : {100.0, 150.0, 250.0}) {
    for (const auto kind :
         {runner::SchemeKind::kHierarchical, runner::SchemeKind::kSourceDirect,
          runner::SchemeKind::kEpidemic, runner::SchemeKind::kFlooding}) {
      auto cfg = base;
      cfg.scheme = kind;
      cfg.energyEnabled = true;
      cfg.energy.batteryJoules = battery;
      cfg.energy.idleJoulesPerHour = 0.5;
      cfg.hierarchical.useOracleRates = true;
      const auto out = runner::runExperiment(cfg);
      table.addRow({metrics::fmt(battery, 0), out.scheme,
                    metrics::fmt(out.results.meanFreshFraction),
                    metrics::fmt(out.results.queries.successRatio()),
                    std::to_string(out.depletedNodes), deathDay(out.firstDepletionTime),
                    metrics::fmt(out.meanRemainingBattery, 2)});
    }
  }
  table.print(std::cout);
}

void batteryAwarePlanning(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name << ": battery-aware helper selection ---\n";
  metrics::Table table({"planning", "mean_fresh", "dead_nodes", "first_death_day",
                        "min_residual", "helpers"});
  // Maintenance traffic isolated (no queries); aggressive relay gating and
  // frequent re-planning give the battery weight its best shot. The effect
  // is honest but small: most drain is receive-side and control cost the
  // sender-side policy cannot avoid (see EXPERIMENTS.md, F12).
  for (const bool aware : {false, true}) {
    auto cfg = base;
    cfg.scheme = runner::SchemeKind::kHierarchical;
    cfg.workload.queriesPerNodePerDay = 0.0;
    cfg.energyEnabled = true;
    cfg.energyAwarePlanning = aware;
    cfg.energy.batteryJoules = 100.0;
    cfg.energy.idleJoulesPerHour = 0.2;
    cfg.hierarchical.useOracleRates = true;
    cfg.hierarchical.minRelayCarrierBattery = 0.4;
    cfg.hierarchical.maintenance = core::MaintenanceMode::kRebuild;
    cfg.hierarchical.maintenancePeriod = sim::hours(6);
    const auto out = runner::runExperiment(cfg);
    table.addRow({aware ? "battery-aware" : "battery-blind",
                  metrics::fmt(out.results.meanFreshFraction),
                  std::to_string(out.depletedNodes), deathDay(out.firstDepletionTime),
                  metrics::fmt(out.minRemainingBattery, 2),
                  std::to_string(out.replicationAssignments)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("F12", "energy cost and network lifetime (extension)");
  budgetSweep("infocom-like", bench::infocomConfig());
  batteryAwarePlanning("infocom-like", bench::infocomConfig());
  return 0;
}
