/// Experiment F13 (extension) — popularity-aware cache allocation.
/// The slot budget (items × R copies) is divided by the workload's Zipf
/// weights: uniform, proportional, or square-root. Expected shape: under
/// skewed demand, √-allocation answers more queries validly than uniform
/// (hot items get more replicas → shorter access paths) without
/// proportional's tail-starvation; under flat demand the policies
/// converge. Freshness per copy is roughly allocation-independent (the
/// refresh hierarchy scales with each item's set).

#include <iostream>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

void runScenario(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name << " ---\n";
  metrics::Table table({"zipf_exp", "allocation", "valid_answers", "answered",
                        "hot_item_delay_h", "mean_fresh"});
  for (double zipf : {0.2, 1.0, 1.6}) {
    for (const auto policy :
         {cache::AllocationPolicy::kUniform, cache::AllocationPolicy::kSqrt,
          cache::AllocationPolicy::kProportional}) {
      auto cfg = base;
      cfg.scheme = runner::SchemeKind::kHierarchical;
      cfg.workload.zipfExponent = zipf;
      cfg.workload.queriesPerNodePerDay = 4.0;
      cfg.allocation = policy;
      cfg.hierarchical.useOracleRates = true;
      const auto out = runner::runExperiment(cfg);
      table.addRow({metrics::fmt(zipf, 1), cache::allocationName(policy),
                    metrics::fmt(out.results.queries.successRatio()),
                    metrics::fmt(out.results.queries.answeredRatio()),
                    metrics::fmt(sim::toHours(out.results.queries.delay.mean()), 2),
                    metrics::fmt(out.results.meanFreshFraction)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("F13", "popularity-aware cache allocation (extension)");
  runScenario("reality-like", bench::realityConfig());
  runScenario("infocom-like", bench::infocomConfig());
  return 0;
}
