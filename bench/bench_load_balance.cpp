/// Experiment F10 — per-node refresh load distribution.
/// The "each caching node is only responsible for refreshing a specific
/// set of caching nodes" design bounds each node's duty; epidemic and
/// flooding push the work onto whoever is most mobile. Expected shape:
/// hierarchical shows the lowest peak-to-mean and Gini among schemes that
/// actually refresh; flooding concentrates traffic on hub nodes.

#include <iostream>

#include "bench/common.hpp"
#include "metrics/load.hpp"

using namespace dtncache;

namespace {

void runScenario(const char* name, runner::ExperimentConfig base) {
  std::cout << "\n--- " << name << " ---\n";
  metrics::Table table({"scheme", "mean_fresh", "refresh_KB_per_node_mean", "peak_to_mean",
                        "gini", "top10_share"});
  base.workload.queriesPerNodePerDay = 0.0;  // isolate maintenance traffic
  for (const auto kind : runner::allSchemes()) {
    if (kind == runner::SchemeKind::kNoRefresh) continue;  // nothing to measure
    base.scheme = kind;
    const auto out = runner::runExperiment(base);
    const auto stats = metrics::loadStats(out.results.transfers.perNodeRefreshBytes());
    table.addRow({out.scheme, metrics::fmt(out.results.meanFreshFraction),
                  metrics::fmt(stats.meanBytes / 1024.0, 1),
                  metrics::fmt(stats.peakToMean, 1), metrics::fmt(stats.gini, 2),
                  metrics::fmt(stats.top10Share, 2)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("F10", "per-node refresh load distribution");
  runScenario("infocom-like", bench::infocomConfig());
  runScenario("reality-like", bench::realityConfig());
  std::cout << "\npeak_to_mean 1.0 = perfectly even duty; gini 0 = even, 1 = "
               "one node does everything.\n";
  return 0;
}
