/// Experiment F9 — sensitivity to contact-rate knowledge.
/// The scheme plans hierarchies and helper sets from estimated rates; this
/// ablation compares oracle knowledge against the online estimator in its
/// three modes and several sliding-window lengths, plus no warm-up at all.
/// Expected shape: oracle ≥ cumulative ≈ long-window > short-window ≈ ewma,
/// and everything comfortably above NoRefresh — the scheme degrades
/// gracefully under estimate noise (maintenance repairs bad edges).

#include <iostream>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

void runScenario(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name << " ---\n";
  metrics::Table table({"rate_knowledge", "mean_fresh", "within_tau", "reparents"});

  auto addRow = [&](const std::string& label, runner::ExperimentConfig cfg) {
    cfg.scheme = runner::SchemeKind::kHierarchical;
    const auto out = runner::runExperiment(cfg);
    table.addRow({label, metrics::fmt(out.results.meanFreshFraction),
                  metrics::fmt(out.results.refreshWithinPeriodRatio),
                  std::to_string(out.reparentCount)});
  };

  {
    auto cfg = base;
    cfg.hierarchical.useOracleRates = true;
    addRow("oracle", cfg);
  }
  {
    auto cfg = base;
    cfg.estimator.mode = trace::EstimatorMode::kCumulative;
    addRow("cumulative", cfg);
  }
  for (double windowDays : {1.0, 3.0, 7.0}) {
    auto cfg = base;
    cfg.estimator.mode = trace::EstimatorMode::kSlidingWindow;
    cfg.estimator.window = sim::days(windowDays);
    addRow("window_" + metrics::fmt(windowDays, 0) + "d", cfg);
  }
  {
    auto cfg = base;
    cfg.estimator.mode = trace::EstimatorMode::kEwma;
    addRow("ewma", cfg);
  }
  {
    auto cfg = base;
    cfg.estimator.mode = trace::EstimatorMode::kCumulative;
    cfg.estimatorWarmup = 0.0;  // cold start: first tree is arbitrary
    addRow("cold_start", cfg);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("F9", "estimator sensitivity (rate knowledge ablation)");
  runScenario("infocom-like", bench::infocomConfig());
  runScenario("reality-like", bench::realityConfig());
  return 0;
}
