/// Experiment F11 — freshness maintenance under node churn.
/// The "distributed maintenance" claim: the refresh structure survives
/// members powering off and returning, repaired locally (leave: children
/// adopted by the grandparent; join: re-attach under the best live
/// parent). Sweep churn intensity and compare the repairing scheme against
/// a frozen hierarchy and against the structure-free epidemic baseline.
/// Expected shape: repair holds most of the churn-free freshness; the
/// frozen hierarchy decays with churn (dead interior nodes orphan
/// subtrees); epidemic is insensitive but starts lower.

#include <iostream>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

void runScenario(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name << " ---\n";
  metrics::Table table({"mean_downtime_h", "arm", "mean_fresh", "within_tau",
                        "churn_repairs", "suppressed_contacts"});
  for (double downH : {0.0, 6.0, 24.0, 72.0}) {
    struct Arm {
      const char* label;
      runner::SchemeKind kind;
      bool repair;
    };
    for (const Arm& arm : {Arm{"hierarchical+repair", runner::SchemeKind::kHierarchical, true},
                           Arm{"hierarchical-frozen", runner::SchemeKind::kHierarchical, false},
                           Arm{"epidemic", runner::SchemeKind::kEpidemic, false}}) {
      auto cfg = base;
      cfg.scheme = arm.kind;
      cfg.workload.queriesPerNodePerDay = 0.0;
      cfg.hierarchical.useOracleRates = true;
      // Structure-only delivery: relays would route around dead interior
      // nodes and mask exactly the damage the repair exists to fix. Deep
      // trees (fanout 2, 12 members) maximize interior-death exposure, and
      // periodic maintenance is off so the only adaptation is churn repair.
      cfg.hierarchical.relayAssisted = false;
      cfg.hierarchical.hierarchy.fanoutBound = 2;
      cfg.hierarchical.maintenance = core::MaintenanceMode::kStatic;
      cfg.cache.cachingNodesPerItem = 12;
      if (downH > 0.0) {
        cfg.churnEnabled = true;
        cfg.churnRepairEnabled = arm.repair;
        cfg.churn.meanUptime = sim::days(2);
        cfg.churn.meanDowntime = sim::hours(downH);
      }
      const auto out = runner::runExperiment(cfg);
      table.addRow({metrics::fmt(downH, 0), arm.label,
                    metrics::fmt(out.results.meanFreshFraction),
                    metrics::fmt(out.results.refreshWithinPeriodRatio),
                    std::to_string(out.churnRepairs),
                    std::to_string(out.contactsSuppressed)});
    }
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("F11", "freshness under node churn (distributed repair)");
  runScenario("infocom-like", bench::infocomConfig());
  runScenario("reality-like", bench::realityConfig());
  return 0;
}
