/// \file bench_kernel.cpp
/// End-to-end simulation-kernel throughput benchmark.
///
/// Measures the costs that bound every sweep job in this repo: raw
/// event-queue throughput (schedule+pop, steady-state churn, mixed cancel),
/// contact-pipeline replay speed on the two standard synthetic traces, a
/// full trace-driven experiment, and replication-planning throughput. Each
/// benchmark also reports the peak pending-event-set size — the kernel's
/// memory footprint driver.
///
/// Emits a machine-readable JSON snapshot (`--json=PATH`) consumed by
/// scripts/bench_baseline.sh, which folds snapshots into the tracked
/// BENCH_kernel.json baseline; scripts/bench_compare.py diffs two
/// snapshots with a percentage threshold. Run from a Release build
/// (scripts/bench_baseline.sh does this for you) — CMake warns otherwise.
///
///   bench_kernel [--json=PATH] [--label=NAME] [--quick]

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/common.hpp"
#include "cache/cache_store.hpp"
#include "cache/centrality.hpp"
#include "core/freshness.hpp"
#include "core/hierarchical_scheme.hpp"
#include "core/hierarchy.hpp"
#include "core/plan_cache.hpp"
#include "core/replication.hpp"
#include "data/source.hpp"
#include "net/network.hpp"
#include "runner/experiment.hpp"
#include "sim/assert.hpp"
#include "sim/event_queue.hpp"
#include "sim/rng.hpp"
#include "sim/simulator.hpp"
#include "sweep/distributed.hpp"
#include "sweep/work_unit.hpp"
#include "trace/estimator.hpp"
#include "trace/generators.hpp"

#ifndef DTNCACHE_BUILD_TYPE
#define DTNCACHE_BUILD_TYPE "unknown"
#endif

namespace dtncache::bench {
namespace {

using Clock = std::chrono::steady_clock;

double secondsSince(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// One benchmark's metrics, in insertion order (stable JSON output).
struct Metrics {
  std::vector<std::pair<std::string, double>> values;
  void set(const std::string& name, double v) { values.push_back({name, v}); }
};

/// Deterministic 64-bit mix (splitmix64) for synthetic event times.
std::uint64_t mix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Best-of-`reps` wall time of `body` (min absorbs scheduler noise).
template <typename F>
double bestSeconds(int reps, F&& body) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    const auto t0 = Clock::now();
    body();
    best = std::min(best, secondsSince(t0));
  }
  return best;
}

/// Bulk load: schedule N events at pseudorandom times, then drain.
Metrics benchSchedulePop(std::size_t n, int reps) {
  std::uint64_t fired = 0;
  const double secs = bestSeconds(reps, [&] {
    sim::EventQueue q;
    std::uint64_t s = 1;
    for (std::size_t i = 0; i < n; ++i)
      q.schedule(static_cast<double>(mix64(s) >> 44), [&fired](sim::SimTime) { ++fired; });
    while (!q.empty()) q.runNext();
  });
  Metrics m;
  m.set("events_per_sec", static_cast<double>(n) / secs);
  m.set("ns_per_event", secs * 1e9 / static_cast<double>(n));
  DTNCACHE_CHECK(fired == static_cast<std::uint64_t>(reps) * n);
  return m;
}

/// Steady state: a ring of `live` events; each pop schedules a successor.
/// This is the shape of a running simulation (timers + streamed contacts).
Metrics benchSteadyState(std::size_t live, std::size_t total, int reps) {
  const double secs = bestSeconds(reps, [&] {
    sim::EventQueue q;
    std::uint64_t s = 2;
    std::uint64_t remaining = total;
    for (std::size_t i = 0; i < live; ++i)
      q.schedule(static_cast<double>(mix64(s) >> 44), [](sim::SimTime) {});
    while (!q.empty() && remaining > 0) {
      const sim::SimTime t = q.runNext();
      --remaining;
      q.schedule(t + static_cast<double>((mix64(s) >> 50) + 1), [](sim::SimTime) {});
    }
    while (!q.empty()) q.runNext();
  });
  Metrics m;
  m.set("events_per_sec", static_cast<double>(total) / secs);
  m.set("ns_per_event", secs * 1e9 / static_cast<double>(total));
  return m;
}

/// Mixed cancel: schedule N, cancel every other id as it goes, drain the
/// survivors. Exercises the cancellation path and lazy heap purge.
Metrics benchMixedCancel(std::size_t n, int reps) {
  const double secs = bestSeconds(reps, [&] {
    sim::EventQueue q;
    std::uint64_t s = 3;
    std::vector<sim::EventId> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      ids.push_back(
          q.schedule(static_cast<double>(mix64(s) >> 44), [](sim::SimTime) {}));
      if (i % 2 == 1) q.cancel(ids[i - 1]);
    }
    while (!q.empty()) q.runNext();
  });
  const double ops = static_cast<double>(n + n / 2 + n / 2);  // sched + cancel + pop
  Metrics m;
  m.set("ops_per_sec", ops / secs);
  m.set("ns_per_op", secs * 1e9 / ops);
  return m;
}

/// Contact-pipeline replay: the network streams a whole trace through the
/// kernel with a no-op protocol. Isolates trace delivery from protocol cost.
Metrics benchNetReplay(const trace::SyntheticTraceConfig& cfg) {
  const trace::SyntheticTrace world = trace::generate(cfg);
  const auto t0 = Clock::now();
  sim::Simulator simulator;
  net::Network network(simulator, world.trace);
  std::size_t delivered = 0;
  network.start([&delivered](NodeId, NodeId, sim::SimTime, sim::SimTime,
                             net::ContactChannel&) { ++delivered; });
  simulator.runUntil(cfg.duration);
  const double secs = secondsSince(t0);
  Metrics m;
  m.set("contacts", static_cast<double>(delivered));
  m.set("contacts_per_sec", static_cast<double>(delivered) / secs);
  m.set("events_per_sec", static_cast<double>(simulator.eventsProcessed()) / secs);
  m.set("peak_pending", static_cast<double>(simulator.peakPendingEvents()));
  m.set("wall_ms", secs * 1e3);
  return m;
}

/// Full trace-driven experiment (hierarchical scheme): the end-to-end
/// number a sweep job pays per cell. Min over reps like every other bench:
/// the first rep additionally pays synthetic-trace generation, later reps
/// replay the memoized trace (trace/trace_cache.hpp) — exactly a sweep's
/// steady state, where every scheme arm after the first reuses the seed's
/// cached trace. Outputs are identical across reps (runExperiment is
/// deterministic), so only the clock differs.
Metrics benchExperiment(const runner::ExperimentConfig& cfg, int reps = 3) {
  runner::ExperimentOutput out;
  const double secs = bestSeconds(reps, [&] { out = runner::runExperiment(cfg); });
  std::uint64_t contacts = 0;
  for (const auto& [name, value] : out.counters)
    if (name == "net.contact.delivered") contacts = value;
  Metrics m;
  m.set("events_processed", static_cast<double>(out.eventsProcessed));
  m.set("events_per_sec", static_cast<double>(out.eventsProcessed) / secs);
  m.set("contacts_per_sec", static_cast<double>(contacts) / secs);
  m.set("peak_pending", static_cast<double>(out.peakPendingEvents));
  m.set("wall_ms", secs * 1e3);
  if (out.shardStats.shards > 0) {
    // Sharded-kernel runs: how much of the trace actually ran on workers
    // (boring fraction) bounds the achievable speedup (Amdahl).
    const auto& s = out.shardStats;
    m.set("shards", static_cast<double>(s.shards));
    m.set("boring_fraction",
          static_cast<double>(s.boringContacts + s.stolenContacts) /
              static_cast<double>(std::max<std::size_t>(1, s.contactsProcessed)));
    m.set("stolen_fraction",
          static_cast<double>(s.stolenContacts) /
              static_cast<double>(std::max<std::size_t>(1, s.contactsProcessed)));
    m.set("barrier_waits", static_cast<double>(s.barrierWaits));
  }
  return m;
}

/// Hypoexponential chain preparation + evaluation: the analytical kernel
/// replication planning leans on (one prepared chain per node, evaluated at
/// τ and τ/2 per candidate pairing). Cycles chain depths 2..8 with
/// deterministic rate spreads; exercises both the prepared-object path and
/// the one-shot free functions (which reuse a thread-local scratch).
Metrics benchHypoexpCdf(std::size_t rounds, int reps) {
  double acc = 0.0;
  const double secs = bestSeconds(reps, [&] {
    std::uint64_t s = 11;
    std::vector<double> rates;
    for (std::size_t r = 0; r < rounds; ++r) {
      const std::size_t depth = 2 + r % 7;
      rates.clear();
      for (std::size_t k = 0; k < depth; ++k)
        rates.push_back(1e-5 * (1.0 + static_cast<double>(mix64(s) % 1000)));
      const core::HypoexpCdf chain(rates);
      const double tau = 3600.0 * (1.0 + static_cast<double>(r % 24));
      acc += chain.cdf(tau) + chain.truncatedMean(tau);
      acc += core::hypoexponentialCdf(rates, tau / 2.0);
    }
  });
  DTNCACHE_CHECK(acc > 0.0);
  // Each round prepares two chains (object + free fn) and evaluates thrice.
  const double evals = static_cast<double>(rounds) * 3.0;
  Metrics m;
  m.set("evals_per_sec", evals / secs);
  m.set("ns_per_eval", secs * 1e9 / evals);
  return m;
}

/// Per-node store micro-costs: the lookups and recency updates every
/// contact handshake and query pays. A catalog-sized working set (items are
/// small dense ids) with a hit-heavy op mix: 8 find : 2 recordAccess :
/// 1 upgrade-insert, plus a miss probe per round.
Metrics benchStoreLookup(std::size_t items, std::size_t rounds, int reps) {
  std::uint64_t found = 0;
  const double secs = bestSeconds(reps, [&] {
    cache::CacheStore store(64ull * 1024 * 1024);
    for (std::size_t i = 0; i < items; ++i)
      store.insert(static_cast<data::ItemId>(i), 1, 64 * 1024, 0.0);
    std::uint64_t s = 7;
    for (std::size_t r = 0; r < rounds; ++r) {
      const double now = static_cast<double>(r);
      for (int k = 0; k < 8; ++k) {
        const auto item = static_cast<data::ItemId>(mix64(s) % items);
        if (store.find(item) != nullptr) ++found;
      }
      store.recordAccess(static_cast<data::ItemId>(mix64(s) % items), now);
      store.recordAccess(static_cast<data::ItemId>(mix64(s) % items), now);
      store.insert(static_cast<data::ItemId>(mix64(s) % items), r + 2, 64 * 1024, now);
      if (store.find(static_cast<data::ItemId>(items + (mix64(s) % items))) != nullptr)
        ++found;  // miss probe
    }
  });
  const double ops = static_cast<double>(rounds) * 12.0;
  Metrics m;
  m.set("ops_per_sec", ops / secs);
  m.set("ns_per_op", secs * 1e9 / ops);
  DTNCACHE_CHECK(found > 0);
  return m;
}

/// True while the full-recompute escape hatch is requested: the maintenance
/// benches honour the same switch the scheme itself reads, so running this
/// binary under DTNCACHE_FULL_MAINTENANCE=1 reproduces the pre-incremental
/// cost model (the recorded `pr4-maint-before` baseline).
bool fullMaintenanceEnv() {
  const char* env = std::getenv("DTNCACHE_FULL_MAINTENANCE");
  return env != nullptr && env[0] != '\0';
}

/// Replication planning throughput (hypoexponential-heavy hot loop).
/// Rates are sparse enough that most members miss θ through the chain
/// alone, so the helper-candidate loop (the expensive part) actually runs.
/// `cached` measures the maintenance steady state introduced with the plan
/// cache: one keyed probe plus an assignment-log replay per evaluation
/// instead of a full re-plan (iters are scaled up accordingly, since a
/// cached evaluation is ~1000x cheaper). With `cached` false — or under
/// DTNCACHE_FULL_MAINTENANCE — every iteration re-plans from scratch,
/// which is exactly what every maintenance tick paid before the cache.
Metrics benchPlanReplication(NodeId members, int iters, bool cached) {
  sim::Rng rng(11);
  trace::RateMatrix rates(members + 1);
  for (NodeId i = 0; i <= members; ++i)
    for (NodeId j = i + 1; j <= members; ++j)
      if (rng.bernoulli(0.7)) rates.setRate(i, j, rng.uniform(1e-6, 1e-4));
  std::vector<NodeId> ms;
  for (NodeId i = 1; i <= members; ++i) ms.push_back(i);
  const core::RateFn rate = [&rates](NodeId a, NodeId b) { return rates.rate(a, b); };
  core::HierarchyConfig hcfg;
  hcfg.fanoutBound = 3;
  const auto h = core::RefreshHierarchy::build(0, ms, rate, sim::hours(6), hcfg);
  core::ReplicationConfig rcfg;
  rcfg.theta = 0.95;

  cached = cached && !fullMaintenanceEnv();
  if (cached) iters *= 10'000;

  core::PlanCache cache;
  cache.resize(1);
  const core::PlanCache::Key key{7, 3, sim::hours(6)};
  if (cached) cache.store(0, key, core::planReplication(h, rate, sim::hours(6), rcfg));

  const auto t0 = Clock::now();
  std::size_t assignments = 0;
  double probability = 0.0;
  for (int i = 0; i < iters; ++i) {
    if (cached) {
      const core::ReplicationPlan* plan = cache.find(0, key);
      DTNCACHE_CHECK(plan != nullptr);
      // A cache hit still replays the plan's assignment log (the scheme
      // re-emits one event + counter add per assignment); fold the log so
      // the replay walk cannot be optimized out.
      for (const auto& a : plan->assignmentLog()) probability += a.probabilityAfter;
      assignments += plan->totalAssignments();
    } else {
      assignments += core::planReplication(h, rate, sim::hours(6), rcfg).totalAssignments();
    }
  }
  const double secs = secondsSince(t0);
  Metrics m;
  m.set("plans_per_sec", static_cast<double>(iters) / secs);
  m.set("us_per_plan", secs * 1e6 / static_cast<double>(iters));
  m.set("assignments", static_cast<double>(assignments / static_cast<std::size_t>(iters)));
  DTNCACHE_CHECK(probability >= 0.0);
  return m;
}

/// Estimator snapshot cost in the maintenance steady state: a warm EWMA
/// estimator absorbs a handful of contacts per tick, then re-materializes
/// its RateMatrix. Incremental snapshots rewrite only the touched rows;
/// under DTNCACHE_FULL_MAINTENANCE every snapshot rewrites all O(N^2)
/// pairs (the pre-incremental cost).
Metrics benchEstimatorSnapshot(NodeId nodes, std::size_t contactsPerTick,
                               std::size_t snapshots) {
  trace::EstimatorConfig ecfg;
  ecfg.mode = trace::EstimatorMode::kEwma;
  trace::ContactRateEstimator est(nodes, ecfg, 0.0);
  // Two contacts per pair make every pair EWMA-stable (interval known), so
  // steady-state dirtiness comes only from the per-tick contacts below.
  for (NodeId i = 0; i < nodes; ++i)
    for (NodeId j = i + 1; j < nodes; ++j) {
      est.recordContact(i, j, 10.0 * (i + 1));
      est.recordContact(i, j, 10.0 * (i + 1) + sim::hours(1));
    }
  trace::RateMatrix m(nodes);
  sim::SimTime now = sim::days(1);
  est.snapshotInto(m, now);  // prime

  const bool force = fullMaintenanceEnv();
  std::uint64_t s = 17;
  std::size_t changed = 0;
  const auto t0 = Clock::now();
  for (std::size_t k = 0; k < snapshots; ++k) {
    for (std::size_t c = 0; c < contactsPerTick; ++c) {
      const NodeId a = static_cast<NodeId>(mix64(s) % nodes);
      NodeId b = static_cast<NodeId>(mix64(s) % nodes);
      if (a == b) b = (b + 1) % nodes;
      est.recordContact(a, b, now);
    }
    now += sim::minutes(10);
    changed += est.snapshotInto(m, now, nullptr, force).changedPairs;
  }
  const double secs = secondsSince(t0);
  Metrics out;
  out.set("snapshots_per_sec", static_cast<double>(snapshots) / secs);
  out.set("us_per_snapshot", secs * 1e6 / static_cast<double>(snapshots));
  DTNCACHE_CHECK(changed > 0);
  return out;
}

/// A maintenance tick end-to-end: the full scheme stack over a sparse
/// trace with frequent ticks, so wall-clock is dominated by periodic
/// maintenance (snapshot + NCL check + per-item skip/rebuild/replan). The
/// warm EWMA estimator and sparse contacts make most (item, tick)
/// evaluations reusable; under DTNCACHE_FULL_MAINTENANCE every tick
/// re-snapshots and rebuilds every item — the pre-incremental cost.
Metrics benchMaintenanceTick(bool quick, int reps) {
  const NodeId nodes = 56;
  const sim::SimTime duration = quick ? sim::days(5) : sim::days(15);
  const auto worldCfg = trace::homogeneousConfig(nodes, 0.05, duration, 21);
  const trace::SyntheticTrace world = trace::generate(worldCfg);
  // Dense pre-history: every pair meets often enough to be EWMA-stable
  // before the measured run starts (fed at negative times, like the
  // experiment harness's estimator warm-up).
  const auto warmCfg = trace::homogeneousConfig(nodes, 2.0, sim::days(14), 22);
  const trace::SyntheticTrace warm = trace::generate(warmCfg);

  std::size_t ticks = 0;
  std::size_t skipped = 0;
  std::size_t cacheHits = 0;
  const double secs = bestSeconds(reps, [&] {
    data::CatalogConfig ccfg;
    ccfg.itemCount = 16;
    ccfg.nodeCount = nodes;
    ccfg.refreshPeriod = sim::hours(12);
    data::Catalog catalog = data::makeUniformCatalog(ccfg);

    trace::EstimatorConfig ecfg;
    ecfg.mode = trace::EstimatorMode::kEwma;
    trace::ContactRateEstimator estimator(nodes, ecfg, -sim::days(14));
    for (const trace::Contact& c : warm.trace.contacts())
      estimator.recordContact(c.a, c.b, c.start - sim::days(14));

    sim::Simulator simulator;
    net::Network network(simulator, world.trace);
    metrics::MetricsCollector collector(catalog, 0.0);
    cache::CoopCacheConfig cacheCfg;
    cacheCfg.cachingNodesPerItem = 8;
    cache::CooperativeCache coop(simulator, network, catalog, estimator, collector,
                                 world.rates, cacheCfg);
    core::HierarchicalConfig schemeCfg;
    schemeCfg.maintenance = core::MaintenanceMode::kRebuild;
    schemeCfg.maintenancePeriod = sim::minutes(10);
    schemeCfg.relayAssisted = false;
    core::HierarchicalRefreshScheme scheme(schemeCfg, &world.rates);
    data::SourceProcess sources(simulator, catalog, duration);
    coop.setScheme(&scheme);
    coop.start(sources, nullptr, duration);
    simulator.runUntil(duration);
    ticks = scheme.maintenanceRuns();
    skipped = scheme.itemsSkipped();
    cacheHits = scheme.planCacheHits();
  });
  Metrics m;
  m.set("ticks_per_sec", static_cast<double>(ticks) / secs);
  m.set("us_per_tick", secs * 1e6 / static_cast<double>(ticks));
  m.set("items_skipped", static_cast<double>(skipped));
  m.set("plan_cache_hits", static_cast<double>(cacheHits));
  DTNCACHE_CHECK(ticks > 0);
  return m;
}

/// Distributed-sweep fan-out on loopback: a coordinator thread serves a
/// small grid over TCP while 1, then 2, worker clients lease, run, and
/// return jobs. End-to-end jobs/s includes the wire protocol, fragment
/// encode + CRC, and store I/O — the per-job overhead a multi-host sweep
/// adds over `--jobs N`. Honest caveat: both variants share this one
/// machine's cores, so jobs_per_sec vs jobs_per_sec_1worker measures
/// protocol headroom, not cross-host speedup — on a single busy CPU the
/// two-worker rate can legitimately be flat.
Metrics benchSweepFanout(std::size_t seedCount) {
  namespace fs = std::filesystem;
  sweep::SweepManifest manifest;
  manifest.grid.base.trace = trace::homogeneousConfig(12, 6.0, sim::days(1), 9);
  manifest.grid.base.catalog.itemCount = 2;
  manifest.grid.base.catalog.refreshPeriod = sim::hours(12);
  manifest.grid.base.workload.queriesPerNodePerDay = 2.0;
  manifest.grid.base.cache.cachingNodesPerItem = 4;
  manifest.grid.schemes = {runner::SchemeKind::kHierarchical,
                           runner::SchemeKind::kEpidemic};
  for (std::uint32_t s = 0; s < seedCount; ++s)
    manifest.grid.seeds.push_back(s + 1);
  manifest.wallClock = false;
  const std::size_t jobs = manifest.grid.schemes.size() * seedCount;

  Metrics m;
  double wall[3] = {0.0, 0.0, 0.0};
  for (const int workers : {1, 2}) {
    const std::string store =
        (fs::temp_directory_path() /
         ("dtncache_bench_fanout_w" + std::to_string(workers))).string();
    fs::remove_all(store);
    const auto t0 = Clock::now();
    sweep::CoordinatorReport report;
    std::thread coordinator([&] {
      sweep::CoordinatorOptions opts;
      opts.storeDir = store;
      opts.quiet = true;
      report = sweep::runCoordinator(manifest, opts);
    });
    std::uint16_t port = 0;  // runCoordinator publishes it before serving
    for (int i = 0; i < 400 && port == 0; ++i) {
      std::ifstream in(store + "/coordinator.port");
      int p = 0;
      if (in >> p && p > 0 && p <= 65535) port = static_cast<std::uint16_t>(p);
      if (port == 0) std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    DTNCACHE_CHECK(port != 0);
    std::vector<std::thread> pool;
    for (int w = 0; w < workers; ++w)
      pool.emplace_back([port] {
        sweep::WorkerOptions wo;
        wo.port = port;
        wo.quiet = true;
        sweep::runWorkerClient(wo);
      });
    for (auto& t : pool) t.join();
    coordinator.join();
    wall[workers] = secondsSince(t0);
    DTNCACHE_CHECK(report.completed == jobs);
    fs::remove_all(store);
  }
  m.set("jobs", static_cast<double>(jobs));
  m.set("jobs_per_sec", static_cast<double>(jobs) / wall[2]);
  m.set("jobs_per_sec_1worker", static_cast<double>(jobs) / wall[1]);
  m.set("fanout_speedup", wall[1] / wall[2]);
  m.set("wall_ms", wall[2] * 1e3);
  return m;
}

/// Streamed mobility generation at large N: contact throughput of the
/// heap-driven SyntheticMobility stream. This is the generation cost a
/// 10^5-node scenario pays — O(edges) memory, no O(N^2) pass anywhere.
Metrics benchMobilityStream(std::size_t nodes, sim::SimTime duration) {
  auto cfg = trace::mobilityConfig(nodes, 1);
  cfg.duration = duration;
  const auto t0 = Clock::now();
  trace::SyntheticMobility stream(cfg);
  const double buildSecs = secondsSince(t0);
  std::size_t contacts = 0;
  trace::Contact c;
  const auto t1 = Clock::now();
  while (stream.next(c)) ++contacts;
  const double streamSecs = secondsSince(t1);
  Metrics m;
  m.set("edges", static_cast<double>(stream.edgeCount()));
  m.set("contacts", static_cast<double>(contacts));
  m.set("contacts_per_sec", static_cast<double>(contacts) / streamSecs);
  m.set("build_ms", buildSecs * 1e3);
  m.set("wall_ms", (buildSecs + streamSecs) * 1e3);
  DTNCACHE_CHECK(contacts > 0);
  return m;
}

/// Sparse estimator at large N: feed a mobility stream's contacts, then
/// measure incremental snapshots (the maintenance-tick shape) where pair
/// state, dirty tracking, and the output matrix are all observed-pair
/// sized. A dense estimator at this node count would need a multi-GB
/// triangle before the first contact.
Metrics benchSparseEstimator(std::size_t nodes, std::size_t snapshots) {
  auto cfg = trace::mobilityConfig(nodes, 2);
  cfg.duration = sim::days(1);
  trace::SyntheticMobility stream(cfg);
  trace::EstimatorConfig ecfg;
  ecfg.mode = trace::EstimatorMode::kEwma;
  ecfg.backend = trace::PairBackend::kSparse;
  trace::ContactRateEstimator est(nodes, ecfg, 0.0);
  trace::Contact c;
  sim::SimTime now = 0.0;
  while (stream.next(c)) {
    est.recordContact(c.a, c.b, c.start);
    now = c.start;
  }
  trace::RateMatrix m;
  est.snapshotInto(m, now);  // prime
  std::uint64_t s = 23;
  std::size_t changed = 0;
  const auto t0 = Clock::now();
  for (std::size_t k = 0; k < snapshots; ++k) {
    for (std::size_t i = 0; i < 16; ++i) {
      const NodeId a = static_cast<NodeId>(mix64(s) % nodes);
      NodeId b = static_cast<NodeId>(mix64(s) % nodes);
      if (a == b) b = static_cast<NodeId>((b + 1) % nodes);
      est.recordContact(a, b, now);
    }
    now += sim::minutes(10);
    changed += est.snapshotInto(m, now).changedPairs;
  }
  const double secs = secondsSince(t0);
  Metrics out;
  out.set("observed_pairs", static_cast<double>(est.observedPairCount()));
  out.set("snapshots_per_sec", static_cast<double>(snapshots) / secs);
  out.set("us_per_snapshot", secs * 1e6 / static_cast<double>(snapshots));
  DTNCACHE_CHECK(changed > 0);
  return out;
}

/// Sparse centrality at large N: capability + greedy NCL selection over a
/// 10^5-node sparse rate matrix — O(edges · k) instead of O(N^2 · k).
Metrics benchSparseCentrality(std::size_t nodes, std::size_t k, int reps) {
  auto cfg = trace::mobilityConfig(nodes, 3);
  const trace::RateMatrix rates = trace::SyntheticMobility(cfg).groundTruthRates();
  std::vector<NodeId> ncls;
  const double secs = bestSeconds(reps, [&] {
    const auto cap = cache::contactCapability(rates, sim::hours(6));
    DTNCACHE_CHECK(!cap.empty());
    ncls = cache::selectNcls(rates, sim::hours(6), k);
  });
  Metrics m;
  m.set("edges", static_cast<double>(rates.observedPairCount()));
  m.set("selects_per_sec", 1.0 / secs);
  m.set("ms_per_select", secs * 1e3);
  DTNCACHE_CHECK(ncls.size() == k);
  return m;
}

void writeJson(const std::string& path, const std::string& label, bool quick,
               const std::vector<std::pair<std::string, Metrics>>& results) {
  std::ofstream out(path);
  if (!out.good()) {
    std::cerr << "cannot write " << path << "\n";
    std::exit(1);
  }
  out.precision(10);
  out << "{\n  \"schema\": 1,\n  \"label\": \"" << label << "\",\n"
      << "  \"build_type\": \"" << DTNCACHE_BUILD_TYPE << "\",\n"
      << "  \"quick\": " << (quick ? "true" : "false") << ",\n  \"results\": {\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    out << "    \"" << results[i].first << "\": {";
    const auto& vals = results[i].second.values;
    for (std::size_t k = 0; k < vals.size(); ++k) {
      out << "\"" << vals[k].first << "\": " << vals[k].second;
      if (k + 1 < vals.size()) out << ", ";
    }
    out << "}" << (i + 1 < results.size() ? "," : "") << "\n";
  }
  out << "  }\n}\n";
}

}  // namespace
}  // namespace dtncache::bench

int main(int argc, char** argv) {
  using namespace dtncache;
  using namespace dtncache::bench;

  std::string jsonPath;
  std::string label = "current";
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) jsonPath = arg.substr(7);
    else if (arg.rfind("--label=", 0) == 0) label = arg.substr(8);
    else if (arg == "--quick") quick = true;
    else {
      std::cerr << "usage: " << argv[0] << " [--json=PATH] [--label=NAME] [--quick]\n";
      return 2;
    }
  }

  const std::size_t n = quick ? 50'000 : 200'000;
  const int reps = quick ? 2 : 5;

  std::vector<std::pair<std::string, Metrics>> results;
  const auto run = [&](const std::string& name, Metrics m) {
    results.push_back({name, std::move(m)});
    std::cout << name << ":";
    for (const auto& [k, v] : results.back().second.values) std::cout << "  " << k << "=" << v;
    std::cout << "\n";
  };

  std::cout << "bench_kernel (" << DTNCACHE_BUILD_TYPE << (quick ? ", quick" : "")
            << ")\n";
  run("eq_schedule_pop", benchSchedulePop(n, reps));
  run("eq_steady_state", benchSteadyState(4096, 2 * n, reps));
  run("eq_mixed_cancel", benchMixedCancel(n, reps));

  run("store_lookup", benchStoreLookup(32, quick ? 100'000 : 400'000, reps));

  run("hypoexp_cdf", benchHypoexpCdf(quick ? 50'000 : 200'000, reps));

  run("net_replay_infocom", benchNetReplay(trace::infocomLikeConfig(1)));
  {
    auto cfg = trace::realityLikeConfig(1);
    if (quick) cfg.duration = sim::days(7);
    run("net_replay_reality", benchNetReplay(cfg));
  }

  {
    // Contact hot path in isolation: the full protocol stack (handshake,
    // scheme pushes, store lookups, metrics) with the query workload off,
    // so every event is a contact and its application-layer cost.
    auto cfg = infocomConfig(1);
    cfg.workload.queriesPerNodePerDay = 0.0;
    if (quick) cfg.trace.duration = sim::days(1);
    run("cache_contact_hot", benchExperiment(cfg));
  }

  {
    auto cfg = infocomConfig(1);
    if (quick) cfg.trace.duration = sim::days(1);
    run("sim_experiment_infocom", benchExperiment(cfg));
  }

  {
    auto cfg = realityConfig(1);
    if (quick) cfg.trace.duration = sim::days(7);
    run("sim_experiment_reality", benchExperiment(cfg));
  }

  run("plan_replication_32", benchPlanReplication(32, quick ? 50 : 200, /*cached=*/true));
  run("plan_replication_cold_32", benchPlanReplication(32, quick ? 50 : 200, /*cached=*/false));

  run("estimator_snapshot", benchEstimatorSnapshot(200, 16, quick ? 500 : 2000));
  run("maintenance_tick", benchMaintenanceTick(quick, quick ? 2 : 3));

  // Distributed-sweep overhead (docs/sweep.md): loopback coordinator + 1
  // then 2 TCP worker clients over a small grid.
  run("sweep_fanout", benchSweepFanout(quick ? 4 : 8));

  // Large-N suite: the sparse pair-state backend and the streamed mobility
  // generator at scales the dense paths cannot reach (docs/scaling.md).
  // Node counts stay at 10^5 even in quick mode — sparse costs scale with
  // observed pairs, so only durations/iterations shrink.
  run("mobility_stream_100k",
      benchMobilityStream(100'000, quick ? sim::days(1) : sim::days(7)));
  run("sparse_estimator_100k", benchSparseEstimator(100'000, quick ? 100 : 400));
  run("sparse_centrality_100k", benchSparseCentrality(100'000, 8, quick ? 1 : 2));
  {
    auto cfg = mobilityExperimentConfig(quick ? 20'000 : 50'000, 1);
    if (quick) cfg.trace.duration = sim::days(1);
    const std::string base =
        quick ? "sim_experiment_mobility_20k" : "sim_experiment_mobility_50k";
    cfg.shards = 1;  // pin the plain kernel (the auto heuristic would shard)
    run(base, benchExperiment(cfg, quick ? 1 : 2));
    // Sharded-kernel scaling points (same run, byte-identical output; see
    // docs/scaling.md — speedup needs >= `shards` physical cores).
    for (const std::size_t shards : {std::size_t{2}, std::size_t{4}}) {
      cfg.shards = shards;
      run(base + "_shards" + std::to_string(shards),
          benchExperiment(cfg, quick ? 1 : 2));
    }
  }

  if (!jsonPath.empty()) {
    writeJson(jsonPath, label, quick, results);
    std::cout << "wrote " << jsonPath << "\n";
  }
  return 0;
}
