/// Experiment T1 — trace characteristics table.
/// Paper analogue: the "trace statistics" table every trace-driven DTN
/// evaluation opens with (nodes, duration, contacts, pairwise density).
/// Ours describes the synthetic stand-ins for Reality and Infocom'06.

#include <iostream>

#include "bench/common.hpp"
#include "trace/generators.hpp"

int main() {
  using namespace dtncache;
  bench::banner("T1", "trace characteristics");

  metrics::Table table({"trace", "nodes", "days", "contacts", "pairs_met",
                        "contacts_per_pair_day", "mean_contact_s"});
  for (const auto& [name, cfg] :
       {std::pair{"reality-like", trace::realityLikeConfig(1)},
        std::pair{"infocom-like", trace::infocomLikeConfig(1)}}) {
    const auto world = trace::generate(cfg);
    const auto s = world.trace.stats();
    table.addRow({name, std::to_string(s.nodeCount),
                  metrics::fmt(sim::toDays(s.duration), 1), std::to_string(s.contactCount),
                  std::to_string(s.pairsThatMet), metrics::fmt(s.meanContactsPerPairPerDay, 3),
                  metrics::fmt(s.meanContactDuration, 0)});
  }
  table.print(std::cout);

  std::cout << "\nReference (real traces): Reality 97 nodes / 246 days / ~0.1 "
               "contacts-pair-day;\nInfocom'06 78 nodes / ~4 days / dense "
               "conference mixing.\n";
  return 0;
}
