/// Experiment F3 — freshness vs refresh period τ.
/// Paper analogue: sensitivity of every scheme to how frequently data is
/// refreshed. Expected shape: all schemes degrade as τ shrinks (less time
/// to propagate each version); the hierarchical scheme degrades most
/// gracefully among the practical schemes and tracks the flooding ceiling.

#include <iostream>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

void runScenario(const char* name, const runner::ExperimentConfig& base,
                 const std::vector<double>& tauHours) {
  std::cout << "\n--- " << name << " ---\n";
  std::vector<std::string> headers{"tau_hours"};
  for (const auto kind : runner::allSchemes()) headers.push_back(runner::schemeName(kind));
  metrics::Table table(headers);
  for (double tau : tauHours) {
    std::vector<std::string> row{metrics::fmt(tau, 0)};
    for (const auto kind : runner::allSchemes()) {
      auto cfg = base;
      cfg.scheme = kind;
      cfg.catalog.refreshPeriod = sim::hours(tau);
      row.push_back(metrics::fmt(runner::runExperiment(cfg).results.meanFreshFraction));
    }
    table.addRow(row);
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("F3", "mean freshness vs refresh period tau");
  runScenario("reality-like", bench::realityConfig(), {24, 48, 96, 168});
  runScenario("infocom-like", bench::infocomConfig(), {2, 4, 6, 12, 24});
  return 0;
}
