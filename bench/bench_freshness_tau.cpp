/// Experiment F3 — freshness vs refresh period τ.
/// Paper analogue: sensitivity of every scheme to how frequently data is
/// refreshed. Expected shape: all schemes degrade as τ shrinks (less time
/// to propagate each version); the hierarchical scheme degrades most
/// gracefully among the practical schemes and tracks the flooding ceiling.
///
/// Grid cells (τ × scheme) are independent simulations and run on the
/// sweep engine's thread pool (`--jobs N`); the table is identical at any
/// jobs count.

#include <iostream>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

void runScenario(const char* name, const runner::ExperimentConfig& base,
                 const std::vector<double>& tauHours, std::size_t jobs) {
  std::cout << "\n--- " << name << " ---\n";
  std::vector<std::string> headers{"tau_hours"};
  for (const auto kind : runner::allSchemes()) headers.push_back(runner::schemeName(kind));

  std::vector<runner::ExperimentConfig> configs;
  for (double tau : tauHours) {
    for (const auto kind : runner::allSchemes()) {
      auto cfg = base;
      cfg.scheme = kind;
      cfg.catalog.refreshPeriod = sim::hours(tau);
      configs.push_back(cfg);
    }
  }
  const auto outputs = sweep::runParallel(configs, jobs);

  metrics::Table table(headers);
  std::size_t next = 0;
  for (double tau : tauHours) {
    std::vector<std::string> row{metrics::fmt(tau, 0)};
    for (std::size_t s = 0; s < runner::allSchemes().size(); ++s)
      row.push_back(metrics::fmt(outputs[next++].results.meanFreshFraction));
    table.addRow(row);
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench::jobsArg(argc, argv);
  bench::banner("F3", "mean freshness vs refresh period tau");
  runScenario("reality-like", bench::realityConfig(), {24, 48, 96, 168}, jobs);
  runScenario("infocom-like", bench::infocomConfig(), {2, 4, 6, 12, 24}, jobs);
  return 0;
}
