/// Experiment F5 — the probabilistic-replication freshness guarantee.
/// Paper analogue: "probabilistic replication methods analytically ensure
/// that the freshness requirements of cached data are satisfied."
///
/// Sweep the requirement θ and report, per arm:
///   - predicted  P(refresh ≤ τ) from the hypoexponential chain+helper model
///   - achieved   P(refresh ≤ τ) measured in simulation
///   - helpers    total replication assignments the planner made
/// Expected shape: with replication ON the achieved probability tracks (or
/// exceeds) θ until the network's physical ceiling; with replication OFF it
/// plateaus at the bare-chain level regardless of θ. The no-relay arm
/// isolates model accuracy: predicted ≈ achieved.
///
/// Every (θ, arm) cell is an independent simulation; the whole grid runs
/// on the sweep engine's thread pool (`--jobs N`) and is formatted in grid
/// order, so the tables are identical at any jobs count.

#include <iostream>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

constexpr double kThetas[] = {0.5, 0.7, 0.8, 0.9, 0.95, 0.99};

runner::ExperimentConfig cell(const runner::ExperimentConfig& base, double theta,
                              bool replication, bool relays) {
  auto cfg = base;
  cfg.scheme = runner::SchemeKind::kHierarchical;
  cfg.hierarchical.replication.enabled = replication;
  cfg.hierarchical.replication.theta = theta;
  cfg.hierarchical.relayAssisted = relays;
  if (!relays) cfg.hierarchical.maintenance = core::MaintenanceMode::kStatic;
  cfg.hierarchical.useOracleRates = true;
  cfg.workload.queriesPerNodePerDay = 0.0;
  return cfg;
}

void addRow(metrics::Table& table, double theta, bool replication, bool relays,
            const runner::ExperimentOutput& out) {
  table.addRow({metrics::fmt(theta, 2), replication ? "on" : "off",
                relays ? "on" : "off", metrics::fmt(out.meanPredictedProbability),
                metrics::fmt(out.results.refreshWithinPeriodRatio),
                std::to_string(out.replicationAssignments),
                std::to_string(out.unmetNodes),
                bench::mb(out.results.transfers.of(net::Traffic::kRefresh).bytes)});
}

void runScenario(const char* name, const runner::ExperimentConfig& base,
                 std::size_t jobs) {
  std::cout << "\n--- " << name << " ---\n";
  // Grid: θ × {replication on, off} without relays, plus one relay-assisted
  // row at θ = 0.9 showing the deployed system exceeds the conservative
  // analytical bound.
  std::vector<runner::ExperimentConfig> configs;
  for (const double theta : kThetas)
    for (const bool replication : {true, false})
      configs.push_back(cell(base, theta, replication, /*relays=*/false));
  configs.push_back(cell(base, 0.9, /*replication=*/true, /*relays=*/true));

  const auto outputs = sweep::runParallel(configs, jobs);

  metrics::Table table({"theta", "replication", "relays", "predicted", "achieved",
                        "helpers", "unmet_nodes", "refresh_MB"});
  std::size_t next = 0;
  for (const double theta : kThetas)
    for (const bool replication : {true, false})
      addRow(table, theta, replication, false, outputs[next++]);
  addRow(table, 0.9, true, true, outputs[next++]);
  table.print(std::cout);
}

void helperOrderAblation(const char* name, const runner::ExperimentConfig& base,
                         std::size_t jobs) {
  std::cout << "\n--- " << name
            << ": helper ranking (contribution-first vs raw-rate-first) ---\n";
  const std::vector<std::pair<core::HelperOrder, const char*>> orders = {
      {core::HelperOrder::kBestContribution, "contribution"},
      {core::HelperOrder::kHighestRate, "raw-rate"}};
  std::vector<runner::ExperimentConfig> configs;
  for (const auto& [order, label] : orders) {
    auto cfg = cell(base, 0.9, /*replication=*/true, /*relays=*/false);
    cfg.hierarchical.replication.order = order;
    configs.push_back(cfg);
  }
  const auto outputs = sweep::runParallel(configs, jobs);

  metrics::Table table({"order", "predicted", "achieved", "helpers"});
  for (std::size_t i = 0; i < orders.size(); ++i) {
    const auto& out = outputs[i];
    table.addRow({orders[i].second, metrics::fmt(out.meanPredictedProbability),
                  metrics::fmt(out.results.refreshWithinPeriodRatio),
                  std::to_string(out.replicationAssignments)});
  }
  table.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const std::size_t jobs = bench::jobsArg(argc, argv);
  bench::banner("F5", "freshness requirement theta: predicted vs achieved");
  runScenario("infocom-like", bench::infocomConfig(), jobs);
  runScenario("reality-like", bench::realityConfig(), jobs);
  helperOrderAblation("infocom-like", bench::infocomConfig(), jobs);
  return 0;
}
