/// Experiment F5 — the probabilistic-replication freshness guarantee.
/// Paper analogue: "probabilistic replication methods analytically ensure
/// that the freshness requirements of cached data are satisfied."
///
/// Sweep the requirement θ and report, per arm:
///   - predicted  P(refresh ≤ τ) from the hypoexponential chain+helper model
///   - achieved   P(refresh ≤ τ) measured in simulation
///   - helpers    total replication assignments the planner made
/// Expected shape: with replication ON the achieved probability tracks (or
/// exceeds) θ until the network's physical ceiling; with replication OFF it
/// plateaus at the bare-chain level regardless of θ. The no-relay arm
/// isolates model accuracy: predicted ≈ achieved.

#include <iostream>

#include "bench/common.hpp"

using namespace dtncache;

namespace {

void runScenario(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name << " ---\n";
  metrics::Table table({"theta", "replication", "relays", "predicted", "achieved",
                        "helpers", "unmet_nodes", "refresh_MB"});
  for (double theta : {0.5, 0.7, 0.8, 0.9, 0.95, 0.99}) {
    for (const bool replication : {true, false}) {
      auto cfg = base;
      cfg.scheme = runner::SchemeKind::kHierarchical;
      cfg.hierarchical.replication.enabled = replication;
      cfg.hierarchical.replication.theta = theta;
      cfg.hierarchical.relayAssisted = false;  // isolate the analytical model
      cfg.hierarchical.maintenance = core::MaintenanceMode::kStatic;
      cfg.hierarchical.useOracleRates = true;
      cfg.workload.queriesPerNodePerDay = 0.0;
      const auto out = runner::runExperiment(cfg);
      table.addRow({metrics::fmt(theta, 2), replication ? "on" : "off", "off",
                    metrics::fmt(out.meanPredictedProbability),
                    metrics::fmt(out.results.refreshWithinPeriodRatio),
                    std::to_string(out.replicationAssignments),
                    std::to_string(out.unmetNodes),
                    bench::mb(out.results.transfers.of(net::Traffic::kRefresh).bytes)});
    }
  }
  // One relay-assisted row per theta extreme, showing the deployed system
  // exceeds the conservative analytical bound.
  for (double theta : {0.9}) {
    auto cfg = base;
    cfg.scheme = runner::SchemeKind::kHierarchical;
    cfg.hierarchical.replication.theta = theta;
    cfg.hierarchical.relayAssisted = true;
    cfg.hierarchical.useOracleRates = true;
    cfg.workload.queriesPerNodePerDay = 0.0;
    const auto out = runner::runExperiment(cfg);
    table.addRow({metrics::fmt(theta, 2), "on", "on",
                  metrics::fmt(out.meanPredictedProbability),
                  metrics::fmt(out.results.refreshWithinPeriodRatio),
                  std::to_string(out.replicationAssignments),
                  std::to_string(out.unmetNodes),
                  bench::mb(out.results.transfers.of(net::Traffic::kRefresh).bytes)});
  }
  table.print(std::cout);
}

void helperOrderAblation(const char* name, const runner::ExperimentConfig& base) {
  std::cout << "\n--- " << name
            << ": helper ranking (contribution-first vs raw-rate-first) ---\n";
  metrics::Table table({"order", "predicted", "achieved", "helpers"});
  for (const auto& [order, label] :
       {std::pair{core::HelperOrder::kBestContribution, "contribution"},
        std::pair{core::HelperOrder::kHighestRate, "raw-rate"}}) {
    auto cfg = base;
    cfg.scheme = runner::SchemeKind::kHierarchical;
    cfg.hierarchical.replication.theta = 0.9;
    cfg.hierarchical.replication.order = order;
    cfg.hierarchical.relayAssisted = false;
    cfg.hierarchical.maintenance = core::MaintenanceMode::kStatic;
    cfg.hierarchical.useOracleRates = true;
    cfg.workload.queriesPerNodePerDay = 0.0;
    const auto out = runner::runExperiment(cfg);
    table.addRow({label, metrics::fmt(out.meanPredictedProbability),
                  metrics::fmt(out.results.refreshWithinPeriodRatio),
                  std::to_string(out.replicationAssignments)});
  }
  table.print(std::cout);
}

}  // namespace

int main() {
  bench::banner("F5", "freshness requirement theta: predicted vs achieved");
  runScenario("infocom-like", bench::infocomConfig());
  runScenario("reality-like", bench::realityConfig());
  helperOrderAblation("infocom-like", bench::infocomConfig());
  return 0;
}
